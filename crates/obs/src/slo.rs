//! Rolling-window SLO tracking: availability and latency objectives.
//!
//! An [`SloTracker`] keeps a ring of one-minute buckets (one hour of history)
//! counting requests, errors, and requests slower than the latency objective.
//! [`SloTracker::snapshot`] rolls the live window up into observed
//! availability, latency compliance, and **burn rates** — how fast the error
//! budget is being consumed (1.0 = exactly on budget; >1.0 = burning faster
//! than the objective allows; sustained 14.4 means a 30-day budget is gone in
//! ~2 days, the classic page-now threshold).
//!
//! Recording is cheap (one short mutex hold, no allocation) and the tracker
//! is shared behind an `Arc` between the serving stats path and the status
//! surfaces (`/v1/status`, per-model stats).
//!
//! ```
//! use mnn_obs::slo::{SloConfig, SloTracker};
//! let tracker = SloTracker::new(SloConfig { latency_p99_ms: 50.0, availability: 0.999 });
//! tracker.record(3.2, true);
//! tracker.record(80.0, true); // over the latency objective
//! let snap = tracker.snapshot();
//! assert_eq!(snap.requests, 2);
//! assert_eq!(snap.latency_over_objective, 1);
//! ```

use serde::{Deserialize, Serialize};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Size of the rolling window, in one-minute buckets.
pub const SLO_WINDOW_MINUTES: usize = 60;

/// The objectives a model is served under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// Latency objective: the p99 target in milliseconds. Compliance tracks
    /// the fraction of requests at or under this bound (which must be ≥ 0.99
    /// for a true p99 objective to hold).
    pub latency_p99_ms: f64,
    /// Availability objective, as a fraction (e.g. `0.999`).
    pub availability: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_p99_ms: 250.0,
            availability: 0.999,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    /// Minute index (since tracker creation) these counts belong to; a bucket
    /// whose minute is stale is reset on first touch of a new minute.
    minute: u64,
    requests: u64,
    errors: u64,
    over_latency: u64,
}

/// Rolling-window availability + latency tracking against an [`SloConfig`].
#[derive(Debug)]
pub struct SloTracker {
    config: SloConfig,
    epoch: Instant,
    buckets: Mutex<[Bucket; SLO_WINDOW_MINUTES]>,
}

impl SloTracker {
    /// A fresh tracker with an empty window.
    pub fn new(config: SloConfig) -> Self {
        SloTracker {
            config,
            epoch: Instant::now(),
            buckets: Mutex::new([Bucket::default(); SLO_WINDOW_MINUTES]),
        }
    }

    /// The configured objectives.
    pub fn config(&self) -> SloConfig {
        self.config
    }

    fn lock(&self) -> MutexGuard<'_, [Bucket; SLO_WINDOW_MINUTES]> {
        self.buckets.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record one finished request: its end-to-end latency and whether it
    /// succeeded.
    pub fn record(&self, latency_ms: f64, ok: bool) {
        let minute = self.epoch.elapsed().as_secs() / 60;
        let mut buckets = self.lock();
        let bucket = &mut buckets[(minute as usize) % SLO_WINDOW_MINUTES];
        if bucket.minute != minute {
            *bucket = Bucket {
                minute,
                ..Bucket::default()
            };
        }
        bucket.requests += 1;
        if !ok {
            bucket.errors += 1;
        }
        if latency_ms > self.config.latency_p99_ms {
            bucket.over_latency += 1;
        }
    }

    /// Roll the live window up into compliance figures.
    pub fn snapshot(&self) -> SloSnapshot {
        let now_minute = self.epoch.elapsed().as_secs() / 60;
        let oldest_live = now_minute.saturating_sub(SLO_WINDOW_MINUTES as u64 - 1);
        let (mut requests, mut errors, mut over) = (0u64, 0u64, 0u64);
        for bucket in self.lock().iter() {
            // A bucket whose minute scrolled out of the window is dead weight
            // until the next record into its slot resets it; skip it here.
            if bucket.minute >= oldest_live && bucket.minute <= now_minute {
                requests += bucket.requests;
                errors += bucket.errors;
                over += bucket.over_latency;
            }
        }
        // Empty windows are healthy: no traffic means no budget burned.
        let availability = if requests == 0 {
            1.0
        } else {
            1.0 - errors as f64 / requests as f64
        };
        let latency_compliance = if requests == 0 {
            1.0
        } else {
            1.0 - over as f64 / requests as f64
        };
        // Burn rate: observed failure fraction over the allowed failure
        // fraction. The availability budget comes from the config; the
        // latency budget for a p99 objective is fixed at 1%.
        let availability_budget = (1.0 - self.config.availability).max(1e-9);
        let availability_burn_rate = (1.0 - availability) / availability_budget;
        let latency_burn_rate = (1.0 - latency_compliance) / 0.01;
        SloSnapshot {
            window_minutes: SLO_WINDOW_MINUTES,
            requests,
            errors,
            latency_over_objective: over,
            availability_target: self.config.availability,
            availability,
            availability_compliant: availability >= self.config.availability,
            availability_burn_rate,
            latency_p99_target_ms: self.config.latency_p99_ms,
            latency_compliance,
            latency_compliant: latency_compliance >= 0.99,
            latency_burn_rate,
        }
    }
}

/// A point-in-time roll-up of the tracker's window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSnapshot {
    /// Window size, minutes.
    pub window_minutes: usize,
    /// Requests observed in the window.
    pub requests: u64,
    /// Failed requests in the window.
    pub errors: u64,
    /// Requests slower than the latency objective.
    pub latency_over_objective: u64,
    /// Configured availability objective.
    pub availability_target: f64,
    /// Observed availability (1.0 on an empty window).
    pub availability: f64,
    /// Whether observed availability meets the objective.
    pub availability_compliant: bool,
    /// Error-budget burn rate (1.0 = on budget, >1.0 = over).
    pub availability_burn_rate: f64,
    /// Configured latency objective (p99 target, ms).
    pub latency_p99_target_ms: f64,
    /// Fraction of requests at or under the latency objective.
    pub latency_compliance: f64,
    /// Whether the latency objective holds (compliance ≥ 0.99).
    pub latency_compliant: bool,
    /// Latency-budget burn rate (fraction over objective / 1%).
    pub latency_burn_rate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_is_compliant_with_zero_burn() {
        let snap = SloTracker::new(SloConfig::default()).snapshot();
        assert_eq!(snap.requests, 0);
        assert!(snap.availability_compliant);
        assert!(snap.latency_compliant);
        assert_eq!(snap.availability_burn_rate, 0.0);
        assert_eq!(snap.latency_burn_rate, 0.0);
    }

    #[test]
    fn errors_and_slow_requests_burn_their_budgets() {
        let tracker = SloTracker::new(SloConfig {
            latency_p99_ms: 10.0,
            availability: 0.99,
        });
        for _ in 0..98 {
            tracker.record(1.0, true);
        }
        tracker.record(1.0, false); // one error
        tracker.record(50.0, true); // one slow success
        let snap = tracker.snapshot();
        assert_eq!(snap.requests, 100);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.latency_over_objective, 1);
        assert!((snap.availability - 0.99).abs() < 1e-9);
        assert!(snap.availability_compliant, "exactly on target still holds");
        // 1% observed failure over a 1% budget: burning at exactly 1x.
        assert!((snap.availability_burn_rate - 1.0).abs() < 1e-6);
        assert!((snap.latency_burn_rate - 1.0).abs() < 1e-6);
    }

    #[test]
    fn blown_objectives_report_noncompliance() {
        let tracker = SloTracker::new(SloConfig {
            latency_p99_ms: 10.0,
            availability: 0.999,
        });
        for _ in 0..5 {
            tracker.record(100.0, false);
        }
        let snap = tracker.snapshot();
        assert!(!snap.availability_compliant);
        assert!(!snap.latency_compliant);
        assert!(snap.availability_burn_rate > 100.0);
        assert_eq!(snap.availability, 0.0);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let tracker = SloTracker::new(SloConfig::default());
        tracker.record(1.0, true);
        let text = serde_json::to_string(&tracker.snapshot()).unwrap();
        assert!(text.contains("\"availability_burn_rate\""), "{text}");
        assert!(text.contains("\"window_minutes\":60"), "{text}");
    }
}
