//! Process-wide resource accounting: who holds how many resident bytes.
//!
//! The serving stack plans memory carefully (arenas with live-range reuse,
//! per-signature plan caches, pooled sessions) but historically could not
//! *report* any of it. This module is the ledger: every subsystem that holds
//! a non-trivial allocation registers an [`AccountedBytes`] handle under a
//! `(scope, component)` key — scope is usually a model name, component names
//! the allocation class (`"arena"`, `"plan_cache"`, `"constants"`,
//! `"tune_cache"`) — and charges/releases bytes as allocations come and go.
//!
//! The hot path is deliberately minimal: [`AccountedBytes::add`] and
//! [`AccountedBytes::sub`] are **one relaxed atomic op each** (the bound the
//! `resources_overhead` bench asserts). All roll-ups — per-scope totals, the
//! process-wide total, the `/metrics` gauges — happen at snapshot/render
//! time, off the allocation path.
//!
//! OS-level ground truth ([`os_stats`]: RSS and thread count from
//! `/proc/self/status`) rides along so operators can compare what the engine
//! *accounts for* against what the kernel *charges* the process.
//!
//! ```
//! let arena = mnn_obs::resources::account("doc-model", "arena");
//! arena.add(4096);
//! let snap = mnn_obs::resources::snapshot();
//! let scope = snap.scopes.iter().find(|s| s.scope == "doc-model").unwrap();
//! assert!(scope.resident_bytes >= 4096);
//! arena.sub(4096);
//! ```

use crate::metrics::{names, Registry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// A cheaply-clonable handle to one `(scope, component)` byte account.
///
/// Clones share the same underlying cell; registering the same key twice
/// returns the same account, so independent holders (e.g. every session in a
/// pool) accumulate into one figure.
#[derive(Debug, Clone)]
pub struct AccountedBytes {
    bytes: Arc<AtomicU64>,
}

impl AccountedBytes {
    /// A detached account not registered anywhere — for callers that want the
    /// charge/release discipline without appearing in snapshots (tests,
    /// accounting disabled).
    pub fn detached() -> Self {
        AccountedBytes {
            bytes: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Charge `bytes` to this account. One relaxed `fetch_add`.
    #[inline]
    pub fn add(&self, bytes: u64) {
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Release `bytes` from this account, saturating at zero. Callers should
    /// release only what they charged, but a mismatched release must show up
    /// as an account stuck at zero — not as a wrapped ~1.8e19-byte gauge
    /// poisoning every snapshot.
    #[inline]
    pub fn sub(&self, bytes: u64) {
        let _ = self
            .bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |current| {
                Some(current.saturating_sub(bytes))
            });
    }

    /// Overwrite the account with an absolute figure (for holders that
    /// re-measure rather than track deltas, e.g. the tune cache).
    #[inline]
    pub fn set(&self, bytes: u64) {
        self.bytes.store(bytes, Ordering::Relaxed);
    }

    /// Current balance.
    pub fn get(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// The ledger's backing map: `(scope, component) → bytes`.
type LedgerMap = BTreeMap<(String, String), Arc<AtomicU64>>;

/// The ledger: locked only at registration and snapshot time, never on the
/// charge/release path.
fn ledger() -> MutexGuard<'static, LedgerMap> {
    static LEDGER: OnceLock<Mutex<LedgerMap>> = OnceLock::new();
    LEDGER
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Register (or look up) the account for `(scope, component)`.
///
/// `scope` is usually a model name; `component` the allocation class
/// (`"arena"`, `"plan_cache"`, `"constants"`, `"tune_cache"`, ...). The same
/// key always returns a handle to the same cell.
pub fn account(scope: &str, component: &str) -> AccountedBytes {
    let cell = ledger()
        .entry((scope.to_string(), component.to_string()))
        .or_insert_with(|| Arc::new(AtomicU64::new(0)))
        .clone();
    AccountedBytes { bytes: cell }
}

/// One component's balance within a scope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentBytes {
    /// Allocation class (`"arena"`, `"constants"`, ...).
    pub component: String,
    /// Resident bytes currently charged.
    pub bytes: u64,
}

/// Everything accounted under one scope (usually: one model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeResources {
    /// The scope name.
    pub scope: String,
    /// Sum over all components.
    pub resident_bytes: u64,
    /// Per-component breakdown, sorted by component name.
    pub components: Vec<ComponentBytes>,
}

/// OS-level process figures, read from `/proc/self/status` (zeros on
/// platforms without procfs or when the read fails — never an error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OsStats {
    /// Resident set size, bytes (`VmRSS`).
    pub rss_bytes: u64,
    /// Thread count (`Threads`).
    pub threads: u64,
}

/// A point-in-time roll-up of the whole ledger plus OS ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceSnapshot {
    /// Sum of every account: bytes the engine knows it holds.
    pub accounted_bytes: u64,
    /// Per-scope breakdown, sorted by scope name.
    pub scopes: Vec<ScopeResources>,
    /// Kernel-reported process figures.
    pub os: OsStats,
}

/// Snapshot the full ledger (cold path: takes the ledger lock once).
pub fn snapshot() -> ResourceSnapshot {
    let mut scopes: BTreeMap<String, ScopeResources> = BTreeMap::new();
    for ((scope, component), cell) in ledger().iter() {
        let bytes = cell.load(Ordering::Relaxed);
        let entry = scopes
            .entry(scope.clone())
            .or_insert_with(|| ScopeResources {
                scope: scope.clone(),
                resident_bytes: 0,
                components: Vec::new(),
            });
        entry.resident_bytes += bytes;
        entry.components.push(ComponentBytes {
            component: component.clone(),
            bytes,
        });
    }
    let scopes: Vec<ScopeResources> = scopes.into_values().collect();
    let accounted_bytes = scopes.iter().map(|s| s.resident_bytes).sum();
    ResourceSnapshot {
        accounted_bytes,
        scopes,
        os: os_stats(),
    }
}

/// Snapshot one scope's accounts (empty components when nothing was ever
/// registered under `scope`).
pub fn scope_snapshot(scope: &str) -> ScopeResources {
    let mut result = ScopeResources {
        scope: scope.to_string(),
        resident_bytes: 0,
        components: Vec::new(),
    };
    for ((s, component), cell) in ledger().iter() {
        if s != scope {
            continue;
        }
        let bytes = cell.load(Ordering::Relaxed);
        result.resident_bytes += bytes;
        result.components.push(ComponentBytes {
            component: component.clone(),
            bytes,
        });
    }
    result
}

/// Read RSS and thread count from `/proc/self/status`. Zeros when procfs is
/// absent (non-Linux) or unreadable — resource reporting must never fail a
/// serving process.
pub fn os_stats() -> OsStats {
    parse_proc_status(&std::fs::read_to_string("/proc/self/status").unwrap_or_default())
}

fn parse_proc_status(text: &str) -> OsStats {
    let mut stats = OsStats {
        rss_bytes: 0,
        threads: 0,
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            // "VmRSS:      123456 kB"
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            stats.rss_bytes = kb * 1024;
        } else if let Some(rest) = line.strip_prefix("Threads:") {
            stats.threads = rest.trim().parse().unwrap_or(0);
        }
    }
    stats
}

/// Compile-time build identity, for `mnn_build_info` and `/v1/status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BuildInfo {
    /// Workspace version (`CARGO_PKG_VERSION`).
    pub version: &'static str,
    /// Build identifier: the `MNN_BUILD_ID` compile-time env var when the
    /// build system stamps one (CI passes a commit-ish), else `"dev"`.
    pub build_id: &'static str,
    /// The kernel backend SIMD dispatch resolved to on this host
    /// (`"scalar"`, `"avx2fma"`, `"neon"`).
    pub kernel_backend: &'static str,
}

/// This process's build identity. The kernel backend is resolved once via
/// [`mnn_kernels::simd::KernelBackend::active`] and reflects the `MNN_SIMD`
/// policy override.
pub fn build_info() -> BuildInfo {
    BuildInfo {
        version: env!("CARGO_PKG_VERSION"),
        build_id: option_env!("MNN_BUILD_ID").unwrap_or("dev"),
        kernel_backend: mnn_kernels::simd::active_kernel_set(),
    }
}

/// Publish the ledger and OS figures as gauges into `registry`:
/// `mnn_resident_bytes{scope,component}`, `mnn_resident_bytes_total`,
/// `mnn_process_rss_bytes`, `mnn_process_threads`, and the constant
/// `mnn_build_info{version,build_id,kernel_backend} 1`.
///
/// Called by [`crate::metrics::render_global`] before every render, so
/// `/metrics` always shows current balances without any subsystem pushing.
pub fn publish_gauges(registry: &Registry) {
    let info = build_info();
    registry
        .gauge_with(
            names::BUILD_INFO,
            "Constant 1, labeled with this process's build identity.",
            &[
                ("version", info.version),
                ("build_id", info.build_id),
                ("kernel_backend", info.kernel_backend),
            ],
        )
        .set(1.0);
    let os = os_stats();
    registry
        .gauge(
            names::PROCESS_RSS_BYTES,
            "Kernel-reported resident set size of this process, bytes.",
        )
        .set(os.rss_bytes as f64);
    registry
        .gauge(
            names::PROCESS_THREADS,
            "Kernel-reported thread count of this process.",
        )
        .set(os.threads as f64);
    let mut total = 0u64;
    for ((scope, component), cell) in ledger().iter() {
        let bytes = cell.load(Ordering::Relaxed);
        total += bytes;
        registry
            .gauge_with(
                names::RESIDENT_BYTES,
                "Engine-accounted resident bytes, by scope (model) and component.",
                &[("scope", scope), ("component", component)],
            )
            .set(bytes as f64);
    }
    registry
        .gauge(
            names::RESIDENT_BYTES_TOTAL,
            "Sum of all engine-accounted resident bytes.",
        )
        .set(total as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounts_roll_up_per_scope_and_process_wide() {
        let arena = account("res-test-model-a", "arena");
        let constants = account("res-test-model-a", "constants");
        let other = account("res-test-model-b", "arena");
        arena.add(1000);
        constants.add(200);
        other.add(50);

        let scope = scope_snapshot("res-test-model-a");
        assert_eq!(scope.resident_bytes, 1200);
        assert_eq!(scope.components.len(), 2);

        let snap = snapshot();
        let a = snap
            .scopes
            .iter()
            .find(|s| s.scope == "res-test-model-a")
            .unwrap();
        assert_eq!(a.resident_bytes, 1200);
        assert!(snap.accounted_bytes >= 1250);

        // Release everything: the scope reads zero again (other tests in this
        // process share the ledger, so only check our own keys).
        arena.sub(1000);
        constants.sub(200);
        other.sub(50);
        assert_eq!(scope_snapshot("res-test-model-a").resident_bytes, 0);
    }

    #[test]
    fn same_key_shares_one_cell() {
        let first = account("res-test-shared", "arena");
        let second = account("res-test-shared", "arena");
        first.add(64);
        assert_eq!(second.get(), 64);
        second.sub(64);
        assert_eq!(first.get(), 0);
    }

    #[test]
    fn over_release_saturates_at_zero() {
        let cell = account("res-test-saturate", "arena");
        cell.add(10);
        cell.sub(25);
        assert_eq!(cell.get(), 0);
        // The account stays usable after the mismatched release.
        cell.add(7);
        assert_eq!(cell.get(), 7);
        cell.set(0);
    }

    #[test]
    fn proc_status_parsing_reads_rss_and_threads() {
        let parsed = parse_proc_status("Name:\tmnn\nVmRSS:\t  123456 kB\nThreads:\t17\n");
        assert_eq!(parsed.rss_bytes, 123456 * 1024);
        assert_eq!(parsed.threads, 17);
        // Garbage degrades to zeros, never an error.
        let empty = parse_proc_status("VmRSS: weird\n");
        assert_eq!(empty.rss_bytes, 0);
    }

    #[test]
    fn os_stats_reports_live_figures_on_linux() {
        let os = os_stats();
        if cfg!(target_os = "linux") {
            assert!(os.rss_bytes > 0, "a running test process has RSS");
            assert!(os.threads >= 1);
        }
    }

    #[test]
    fn build_info_names_a_kernel_backend() {
        let info = build_info();
        assert!(!info.version.is_empty());
        assert!(["scalar", "avx2fma", "neon"].contains(&info.kernel_backend));
    }

    #[test]
    fn publish_gauges_exports_ledger_and_os_figures() {
        let registry = Registry::new();
        account("res-test-publish", "constants").add(4096);
        publish_gauges(&registry);
        let text = registry.render_prometheus();
        assert!(
            text.contains(
                "mnn_resident_bytes{scope=\"res-test-publish\",component=\"constants\"} 4096"
            ),
            "{text}"
        );
        assert!(text.contains("mnn_build_info{"), "{text}");
        assert!(text.contains("mnn_process_threads"), "{text}");
        account("res-test-publish", "constants").sub(4096);
    }
}
