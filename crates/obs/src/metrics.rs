//! The process-wide metrics registry: lock-free counters, gauges and
//! histograms, rendered in Prometheus text exposition format.
//!
//! Call sites obtain a handle once ([`Registry::counter`],
//! [`Registry::gauge`], [`Registry::histogram`]) and then update it with
//! plain atomic operations — the registry lock is only taken at registration
//! and at render time. Handles are cheap `Arc` clones; registering the same
//! `(name, labels)` twice returns the **same** underlying series, so
//! independent subsystems (or repeated server constructions in one process)
//! accumulate into one time series.
//!
//! ```
//! let registry = mnn_obs::Registry::new();
//! let requests = registry.counter("mnn_demo_requests_total", "Requests seen.");
//! requests.inc();
//! let text = registry.render_prometheus();
//! assert!(text.contains("mnn_demo_requests_total 1"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Stable metric names used across the workspace — the `/metrics` contract.
pub mod names {
    /// Requests accepted into a serve queue (counter).
    pub const INFER_REQUESTS: &str = "mnn_infer_requests_total";
    /// Requests answered successfully (counter).
    pub const INFER_COMPLETED: &str = "mnn_infer_completed_total";
    /// Requests answered with an inference error (counter).
    pub const INFER_ERRORS: &str = "mnn_infer_errors_total";
    /// Submissions rejected with `QueueFull` backpressure (counter).
    pub const INFER_REJECTED: &str = "mnn_infer_rejected_total";
    /// Queued requests failed with `ShuttingDown` at drain eviction (counter).
    pub const INFER_ABORTED: &str = "mnn_infer_aborted_total";
    /// Worker panics contained by the serving runtime (counter).
    pub const WORKER_PANICS: &str = "mnn_worker_panics_total";
    /// End-to-end request latency, milliseconds (histogram).
    pub const INFER_LATENCY_MS: &str = "mnn_infer_latency_ms";
    /// Executed micro-batch sizes (histogram).
    pub const BATCH_SIZE: &str = "mnn_batch_size";
    /// Requests currently waiting in serve queues (gauge).
    pub const QUEUE_DEPTH: &str = "mnn_queue_depth";
    /// Sessions prepared (full pre-inference passes, counter).
    pub const SESSION_PREPARES: &str = "mnn_session_prepare_total";
    /// Session preparation wall time, milliseconds (histogram).
    pub const SESSION_PREPARE_MS: &str = "mnn_session_prepare_ms";
    /// `resize_session` calls that re-planned or swapped plans (counter).
    pub const SESSION_RESIZES: &str = "mnn_session_resize_total";
    /// Resizes served from the per-shape-signature plan cache (counter).
    pub const PLAN_CACHE_HITS: &str = "mnn_plan_cache_hits_total";
    /// Resizes that re-ran pre-inference for a new geometry (counter).
    pub const PLAN_CACHE_MISSES: &str = "mnn_plan_cache_misses_total";
    /// Session-pool checkouts (counter).
    pub const POOL_ACQUIRES: &str = "mnn_session_pool_acquires_total";
    /// Tuning-cache lookups answered from the cache (counter).
    pub const TUNE_CACHE_HITS: &str = "mnn_tune_cache_hits_total";
    /// Tuning-cache lookups that found no entry (counter).
    pub const TUNE_CACHE_MISSES: &str = "mnn_tune_cache_misses_total";
    /// Candidate kernels micro-benchmarked by the tuner (counter).
    pub const TUNE_MEASURED: &str = "mnn_tune_measured_candidates_total";
    /// HTTP responses written, labeled by status code (counter).
    pub const HTTP_RESPONSES: &str = "mnn_http_responses_total";
    /// HTTP connections currently being served (gauge).
    pub const HTTP_CONNECTIONS: &str = "mnn_http_connections_active";
    /// Seconds since this process first touched the metrics registry (gauge).
    pub const UPTIME_SECONDS: &str = "mnn_uptime_seconds";
    /// Time requests spent waiting in serve queues, milliseconds (histogram).
    pub const QUEUE_WAIT_MS: &str = "mnn_queue_wait_ms";
    /// Time from dequeue to inference start (stacking, geometry), ms (histogram).
    pub const BATCH_ASSEMBLY_MS: &str = "mnn_batch_assembly_ms";
    /// Request traces completed by the flight recorder (counter).
    pub const TRACES_RECORDED: &str = "mnn_traces_recorded_total";
    /// Constant 1, labeled version/build_id/kernel_backend (gauge).
    pub const BUILD_INFO: &str = "mnn_build_info";
    /// Kernel-reported resident set size of this process, bytes (gauge).
    pub const PROCESS_RSS_BYTES: &str = "mnn_process_rss_bytes";
    /// Kernel-reported thread count of this process (gauge).
    pub const PROCESS_THREADS: &str = "mnn_process_threads";
    /// Engine-accounted resident bytes, labeled scope/component (gauge).
    pub const RESIDENT_BYTES: &str = "mnn_resident_bytes";
    /// Sum of all engine-accounted resident bytes (gauge).
    pub const RESIDENT_BYTES_TOTAL: &str = "mnn_resident_bytes_total";
    /// Workers flagged stalled by the health watchdog, cumulative (counter).
    pub const WORKER_STALLS: &str = "mnn_worker_stalls_total";
    /// Workers currently flagged stalled (gauge).
    pub const STALLED_WORKERS: &str = "mnn_stalled_workers";
}

/// Default latency bucket bounds, milliseconds.
pub const LATENCY_MS_BUCKETS: &[f64] = &[
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
];

/// Default batch-size bucket bounds.
pub const BATCH_SIZE_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a double that can go up and down (stored as `f64` bits).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set to `value`.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (may be negative). Lock-free CAS loop.
    #[inline]
    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Subtract `delta`.
    #[inline]
    pub fn sub(&self, delta: f64) {
        self.add(-delta);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared histogram storage: per-bucket counts plus sum and count.
#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds, ascending; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts; `counts[bounds.len()]` is `+Inf`.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, as `f64` bits.
    sum_bits: AtomicU64,
    observations: AtomicU64,
    /// Most recent `(value, trace_id)` exemplar per bucket, rendered as an
    /// OpenMetrics exemplar suffix. Only written by
    /// [`Histogram::observe_with_exemplar`], so exemplar-free histograms
    /// render byte-identically to before.
    exemplars: Vec<Mutex<Option<(f64, String)>>>,
}

/// A histogram with fixed bucket bounds (Prometheus classic histogram).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        self.observe_slot(value);
    }

    /// Record one observation and attach `trace_id` as the bucket's exemplar,
    /// so an operator can go from a bad latency bucket straight to the
    /// offending trace in the flight recorder (`GET /v1/traces?id=...`).
    pub fn observe_with_exemplar(&self, value: f64, trace_id: &str) {
        let slot = self.observe_slot(value);
        let mut exemplar = self.0.exemplars[slot]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *exemplar = Some((value, trace_id.to_string()));
    }

    #[inline]
    fn observe_slot(&self, value: f64) -> usize {
        let inner = &self.0;
        let slot = inner
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(inner.bounds.len());
        inner.counts[slot].fetch_add(1, Ordering::Relaxed);
        inner.observations.fetch_add(1, Ordering::Relaxed);
        let mut current = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return slot,
                Err(observed) => current = observed,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.observations.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

type LabelSet = Vec<(String, String)>;

struct Family {
    help: String,
    kind: MetricKind,
    series: BTreeMap<LabelSet, Series>,
}

/// A named collection of metric families (see the [module docs](self)).
///
/// Most code uses the process-wide [`global`] registry; tests that need
/// isolation construct their own.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Family>> {
        self.families.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Series,
    ) -> Series {
        let mut families = self.lock();
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric '{name}' is already registered as a {}, not a {}",
            family.kind.as_str(),
            kind.as_str()
        );
        let key: LabelSet = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        family.series.entry(key).or_insert_with(make).clone()
    }

    /// Register (or look up) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or look up) a counter with label pairs, e.g.
    /// `counter_with("mnn_http_responses_total", help, &[("code", "200")])`.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, labels, MetricKind::Counter, || {
            Series::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Register (or look up) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or look up) a gauge with label pairs, e.g.
    /// `gauge_with("mnn_resident_bytes", help, &[("scope", "tiny-cnn")])`.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, labels, MetricKind::Gauge, || {
            Series::Gauge(Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))))
        }) {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Register (or look up) an unlabeled histogram with ascending bucket
    /// upper bounds (an implicit `+Inf` bucket is appended).
    ///
    /// A second registration under the same name returns the existing
    /// histogram regardless of the `buckets` argument.
    pub fn histogram(&self, name: &str, help: &str, buckets: &[f64]) -> Histogram {
        debug_assert!(
            buckets.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        match self.series(name, help, &[], MetricKind::Histogram, || {
            let counts = (0..=buckets.len()).map(|_| AtomicU64::new(0)).collect();
            let exemplars = (0..=buckets.len()).map(|_| Mutex::new(None)).collect();
            Series::Histogram(Histogram(Arc::new(HistogramInner {
                bounds: buckets.to_vec(),
                counts,
                sum_bits: AtomicU64::new(0.0f64.to_bits()),
                observations: AtomicU64::new(0),
                exemplars,
            })))
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Render every registered family in Prometheus text exposition format
    /// (`text/plain; version=0.0.4`): `# HELP` / `# TYPE` comments, families
    /// sorted by name, series sorted by label set, histogram buckets
    /// cumulative with a final `+Inf`.
    pub fn render_prometheus(&self) -> String {
        let families = self.lock();
        let mut out = String::with_capacity(families.len() * 128);
        for (name, family) in families.iter() {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(&escape_help(&family.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(family.kind.as_str());
            out.push('\n');
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(counter) => {
                        render_sample(&mut out, name, labels, None, &format_u64(counter.get()));
                    }
                    Series::Gauge(gauge) => {
                        render_sample(&mut out, name, labels, None, &format_f64(gauge.get()));
                    }
                    Series::Histogram(histogram) => {
                        let inner = &histogram.0;
                        let mut cumulative = 0u64;
                        for (i, bound) in inner.bounds.iter().enumerate() {
                            cumulative += inner.counts[i].load(Ordering::Relaxed);
                            render_sample(
                                &mut out,
                                &format!("{name}_bucket"),
                                labels,
                                Some(("le", &format_f64(*bound))),
                                &format_u64(cumulative),
                            );
                            append_exemplar(&mut out, &inner.exemplars[i]);
                        }
                        cumulative += inner.counts[inner.bounds.len()].load(Ordering::Relaxed);
                        render_sample(
                            &mut out,
                            &format!("{name}_bucket"),
                            labels,
                            Some(("le", "+Inf")),
                            &format_u64(cumulative),
                        );
                        append_exemplar(&mut out, &inner.exemplars[inner.bounds.len()]);
                        render_sample(
                            &mut out,
                            &format!("{name}_sum"),
                            labels,
                            None,
                            &format_f64(histogram.sum()),
                        );
                        render_sample(
                            &mut out,
                            &format!("{name}_count"),
                            labels,
                            None,
                            &format_u64(histogram.count()),
                        );
                    }
                }
            }
        }
        out
    }
}

fn render_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Rewrite the just-rendered bucket line to carry an OpenMetrics exemplar
/// suffix (` # {trace_id="..."} value`) when the bucket has one. Buckets
/// without exemplars render byte-identically to the classic format.
fn append_exemplar(out: &mut String, slot: &Mutex<Option<(f64, String)>>) {
    let exemplar = slot.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some((value, trace_id)) = exemplar.as_ref() {
        debug_assert!(out.ends_with('\n'));
        out.pop();
        out.push_str(" # {trace_id=\"");
        out.push_str(&escape_label_value(trace_id));
        out.push_str("\"} ");
        out.push_str(&format_f64(*value));
        out.push('\n');
    }
}

/// Escape a HELP string: backslash and newline.
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: backslash, double quote and newline.
fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn format_u64(value: u64) -> String {
    value.to_string()
}

fn format_f64(value: f64) -> String {
    if value.is_infinite() {
        if value > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        // Rust's shortest-roundtrip formatting: "3" for 3.0 is fine for
        // Prometheus (all values are doubles).
        format!("{value}")
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();
static PROCESS_EPOCH: OnceLock<std::time::Instant> = OnceLock::new();

/// The process-wide registry every engine layer writes into.
pub fn global() -> &'static Registry {
    process_epoch();
    GLOBAL.get_or_init(Registry::new)
}

/// When this process first touched the metrics layer (the
/// `mnn_uptime_seconds` epoch).
pub fn process_epoch() -> std::time::Instant {
    *PROCESS_EPOCH.get_or_init(std::time::Instant::now)
}

/// Eagerly register every well-known unlabeled series from [`names`] in the
/// [`global`] registry, so a `/metrics` scrape shows the full schema (at
/// zero) even for subsystems that have not run yet. Idempotent: series
/// already registered by their instrumentation site are left untouched.
pub fn register_defaults() {
    let registry = global();
    registry.counter(
        names::INFER_REQUESTS,
        "Requests accepted into a serve queue.",
    );
    registry.counter(names::INFER_COMPLETED, "Requests answered successfully.");
    registry.counter(
        names::INFER_ERRORS,
        "Requests answered with an inference error.",
    );
    registry.counter(
        names::INFER_REJECTED,
        "Submissions rejected with QueueFull backpressure.",
    );
    registry.counter(
        names::INFER_ABORTED,
        "Queued requests failed with ShuttingDown at drain eviction.",
    );
    registry.counter(
        names::WORKER_PANICS,
        "Worker panics contained by the serving runtime.",
    );
    registry.histogram(
        names::INFER_LATENCY_MS,
        "End-to-end request latency (enqueue to response), milliseconds.",
        LATENCY_MS_BUCKETS,
    );
    registry.histogram(
        names::BATCH_SIZE,
        "Executed micro-batch sizes.",
        BATCH_SIZE_BUCKETS,
    );
    registry.gauge(
        names::QUEUE_DEPTH,
        "Requests currently waiting in serve queues.",
    );
    registry.counter(
        names::SESSION_PREPARES,
        "Sessions prepared (full pre-inference passes).",
    );
    registry.histogram(
        names::SESSION_PREPARE_MS,
        "Session preparation wall time, milliseconds.",
        LATENCY_MS_BUCKETS,
    );
    registry.counter(
        names::SESSION_RESIZES,
        "resize_session calls that changed the active geometry.",
    );
    registry.counter(
        names::PLAN_CACHE_HITS,
        "Resizes served from the per-shape-signature plan cache.",
    );
    registry.counter(
        names::PLAN_CACHE_MISSES,
        "Resizes that re-ran pre-inference for a new geometry.",
    );
    registry.counter(names::POOL_ACQUIRES, "Session-pool checkouts.");
    registry.counter(
        names::TUNE_CACHE_HITS,
        "Tuning-cache lookups answered from the cache.",
    );
    registry.counter(
        names::TUNE_CACHE_MISSES,
        "Tuning-cache lookups that found no entry.",
    );
    registry.counter(
        names::TUNE_MEASURED,
        "Candidate kernels micro-benchmarked by the tuner.",
    );
    registry.gauge(
        names::HTTP_CONNECTIONS,
        "HTTP connections currently being served.",
    );
    registry.histogram(
        names::QUEUE_WAIT_MS,
        "Time requests spent waiting in serve queues, milliseconds.",
        LATENCY_MS_BUCKETS,
    );
    registry.histogram(
        names::BATCH_ASSEMBLY_MS,
        "Time from dequeue to inference start (stacking, geometry), milliseconds.",
        LATENCY_MS_BUCKETS,
    );
    registry.counter(
        names::TRACES_RECORDED,
        "Request traces completed by the flight recorder.",
    );
    registry.counter(
        names::WORKER_STALLS,
        "Workers flagged stalled by the health watchdog, cumulative.",
    );
    registry.gauge(
        names::STALLED_WORKERS,
        "Workers currently flagged stalled by the health watchdog.",
    );
    registry.gauge(names::UPTIME_SECONDS, "Seconds since process start.");
    // Build identity, OS-level process gauges and the resource ledger render
    // even when idle: publish them at registration time too, not only on the
    // render_global refresh.
    crate::resources::publish_gauges(registry);
}

/// Refresh the live gauges (`mnn_uptime_seconds`, the resource ledger, RSS
/// and thread count) and render the [`global`] registry, with the full
/// well-known schema pre-registered ([`register_defaults`]).
pub fn render_global() -> String {
    register_defaults();
    let registry = global();
    registry
        .gauge(names::UPTIME_SECONDS, "Seconds since process start.")
        .set(process_epoch().elapsed().as_secs_f64());
    crate::resources::publish_gauges(registry);
    registry.render_prometheus()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_update() {
        let registry = Registry::new();
        let c = registry.counter("c_total", "counts");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same series.
        assert_eq!(registry.counter("c_total", "counts").get(), 5);

        let g = registry.gauge("g", "gauges");
        g.set(2.5);
        g.add(1.0);
        g.sub(0.5);
        assert!((g.get() - 3.0).abs() < 1e-12);

        let h = registry.histogram("h", "hist", &[1.0, 5.0]);
        h.observe(0.5);
        h.observe(3.0);
        h.observe(100.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 103.5).abs() < 1e-9);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let registry = Registry::new();
        let ok = registry.counter_with("resp_total", "responses", &[("code", "200")]);
        let err = registry.counter_with("resp_total", "responses", &[("code", "500")]);
        ok.inc();
        ok.inc();
        err.inc();
        assert_eq!(ok.get(), 2);
        assert_eq!(err.get(), 1);
        let text = registry.render_prometheus();
        assert!(text.contains("resp_total{code=\"200\"} 2\n"), "{text}");
        assert!(text.contains("resp_total{code=\"500\"} 1\n"), "{text}");
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("m", "as counter");
        registry.gauge("m", "as gauge");
    }

    /// Golden exposition-format test: the exact text `/metrics` serves for a
    /// known registry state. Any format drift fails here first.
    #[test]
    fn prometheus_exposition_shape_is_pinned() {
        let registry = Registry::new();
        let requests = registry.counter("zz_requests_total", "Requests seen.");
        requests.add(7);
        registry
            .counter_with("aa_responses_total", "Responses.", &[("code", "200")])
            .add(3);
        registry.gauge("mm_depth", "Queue depth.").set(2.0);
        let lat = registry.histogram("ll_latency_ms", "Latency.", &[1.0, 2.5]);
        lat.observe(0.5);
        lat.observe(0.7);
        lat.observe(2.0);
        lat.observe(9.0);

        assert_eq!(
            registry.render_prometheus(),
            concat!(
                "# HELP aa_responses_total Responses.\n",
                "# TYPE aa_responses_total counter\n",
                "aa_responses_total{code=\"200\"} 3\n",
                "# HELP ll_latency_ms Latency.\n",
                "# TYPE ll_latency_ms histogram\n",
                "ll_latency_ms_bucket{le=\"1\"} 2\n",
                "ll_latency_ms_bucket{le=\"2.5\"} 3\n",
                "ll_latency_ms_bucket{le=\"+Inf\"} 4\n",
                "ll_latency_ms_sum 12.2\n",
                "ll_latency_ms_count 4\n",
                "# HELP mm_depth Queue depth.\n",
                "# TYPE mm_depth gauge\n",
                "mm_depth 2\n",
                "# HELP zz_requests_total Requests seen.\n",
                "# TYPE zz_requests_total counter\n",
                "zz_requests_total 7\n",
            )
        );
    }

    /// Exemplars attach to the bucket the observation landed in and leave
    /// every other line untouched; plain observations never produce one.
    #[test]
    fn histogram_exemplars_render_on_their_bucket_only() {
        let registry = Registry::new();
        let h = registry.histogram("ex_ms", "m", &[1.0, 5.0]);
        h.observe(0.5);
        let before = registry.render_prometheus();
        assert!(!before.contains("trace_id"), "{before}");

        h.observe_with_exemplar(3.0, "0af7651916cd43dd8448eb211c80319c");
        h.observe_with_exemplar(99.0, "b7ad6b7169203331b7ad6b7169203331");
        let text = registry.render_prometheus();
        assert!(
            text.contains(
                "ex_ms_bucket{le=\"5\"} 2 # {trace_id=\"0af7651916cd43dd8448eb211c80319c\"} 3\n"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "ex_ms_bucket{le=\"+Inf\"} 3 # {trace_id=\"b7ad6b7169203331b7ad6b7169203331\"} 99\n"
            ),
            "{text}"
        );
        assert!(text.contains("ex_ms_bucket{le=\"1\"} 1\n"), "{text}");
        // A later exemplar in the same bucket replaces the earlier one.
        h.observe_with_exemplar(2.0, "deadbeefdeadbeefdeadbeefdeadbeef");
        let text = registry.render_prometheus();
        assert!(
            text.contains("# {trace_id=\"deadbeefdeadbeefdeadbeefdeadbeef\"} 2\n"),
            "{text}"
        );
        assert!(!text.contains("0af7651916cd43dd8448eb211c80319c"), "{text}");
    }

    #[test]
    fn help_and_label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .counter_with(
                "esc_total",
                "line one\nback\\slash",
                &[("path", "a\"b\\c\nd")],
            )
            .inc();
        let text = registry.render_prometheus();
        assert!(
            text.contains("# HELP esc_total line one\\nback\\\\slash\n"),
            "{text}"
        );
        assert!(
            text.contains("esc_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let registry = Registry::new();
        let h = registry.histogram("mono_ms", "m", LATENCY_MS_BUCKETS);
        for v in [0.1, 0.3, 0.9, 3.0, 3.0, 40.0, 9000.0] {
            h.observe(v);
        }
        let text = registry.render_prometheus();
        let mut last = 0u64;
        let mut buckets = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("mono_ms_bucket{le=\"") {
                let count: u64 = rest.split("\"} ").nth(1).unwrap().parse().unwrap();
                assert!(count >= last, "buckets must be cumulative: {text}");
                last = count;
                buckets += 1;
            }
        }
        assert_eq!(buckets, LATENCY_MS_BUCKETS.len() + 1);
        assert_eq!(last, 7, "+Inf bucket must equal the observation count");
        assert!(text.contains("mono_ms_count 7\n"));
    }

    #[test]
    fn sum_bucket_and_inf_are_consistent_after_concurrent_updates() {
        let registry = Arc::new(Registry::new());
        let h = registry.histogram("conc_ms", "m", &[10.0]);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.observe((i % 20) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        let expected: f64 = 4.0 * (0..1000).map(|i| (i % 20) as f64).sum::<f64>();
        assert!(
            (h.sum() - expected).abs() < 1e-6,
            "lock-free sum must not lose updates"
        );
    }

    #[test]
    fn global_registry_is_a_singleton_and_renders_uptime() {
        let a = global().counter("global_smoke_total", "smoke");
        a.inc();
        let b = global().counter("global_smoke_total", "smoke");
        assert!(b.get() >= 1);
        let text = render_global();
        assert!(text.contains("mnn_uptime_seconds"), "{text}");
    }
}
