//! Chrome Trace Event Format export (the JSON `chrome://tracing` and
//! Perfetto load).
//!
//! Every span becomes a complete event (`"ph": "X"`) with microsecond `ts` /
//! `dur`. Node spans share the run span's thread id, so the viewer nests
//! them under the enclosing run by time containment.

use crate::profile::SpanRecord;
use serde::{Deserialize, Serialize};

/// One complete-duration event. Field names are the Trace Event Format's.
#[allow(non_snake_case)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct TraceEvent {
    pub(crate) name: String,
    pub(crate) cat: String,
    pub(crate) ph: String,
    pub(crate) ts: f64,
    pub(crate) dur: f64,
    pub(crate) pid: u64,
    pub(crate) tid: u64,
    pub(crate) args: TraceArgs,
}

/// The `args` payload shown in the viewer's detail pane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct TraceArgs {
    pub(crate) op: String,
    pub(crate) scheme: String,
    pub(crate) placement: String,
    pub(crate) shape: String,
    pub(crate) bytes: u64,
    pub(crate) run: u64,
}

/// Top-level trace object (`{"traceEvents": [...]}` form).
#[allow(non_snake_case)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ChromeTrace {
    pub(crate) traceEvents: Vec<TraceEvent>,
    pub(crate) displayTimeUnit: String,
}

/// Render spans as Trace Event Format JSON.
pub(crate) fn render(spans: &[&SpanRecord]) -> String {
    let events = spans
        .iter()
        .map(|span| TraceEvent {
            name: span.name.clone(),
            cat: span.op.clone(),
            ph: "X".to_string(),
            ts: span.start_us,
            dur: span.dur_us,
            pid: 1,
            tid: 1,
            args: TraceArgs {
                op: span.op.clone(),
                scheme: span.scheme.clone(),
                placement: span.placement.clone(),
                shape: span.shape.clone(),
                bytes: span.bytes,
                run: span.run,
            },
        })
        .collect();
    render_events(events)
}

/// Render pre-built events as Trace Event Format JSON (used by the flight
/// recorder to merge request-, stage- and op-level spans).
pub(crate) fn render_events(events: Vec<TraceEvent>) -> String {
    let trace = ChromeTrace {
        traceEvents: events,
        displayTimeUnit: "ms".to_string(),
    };
    serde_json::to_string(&trace).expect("trace serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profiler;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn spin(d: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < d {
            std::hint::black_box(0u64);
        }
    }

    /// The exported trace parses as JSON, every event carries the `ph`, `ts`
    /// and `dur` fields the format requires, and node spans nest inside
    /// their run span (time containment on one tid).
    #[test]
    fn chrome_trace_is_valid_and_spans_nest() {
        let profiler = Arc::new(Profiler::new());
        let mut rec = profiler.begin_run().unwrap();
        for name in ["conv1", "act1"] {
            let t0 = Instant::now();
            spin(Duration::from_millis(2));
            rec.record_node(name, "conv2d", "winograd", "cpu-f32", "1x8x4x4", t0, 64);
        }
        rec.finish();

        let json = profiler.chrome_trace();
        let trace: ChromeTrace = serde_json::from_str(&json).expect("trace must parse");
        assert_eq!(trace.displayTimeUnit, "ms");
        assert_eq!(trace.traceEvents.len(), 3, "run span + 2 node spans");

        let run = trace
            .traceEvents
            .iter()
            .find(|e| e.name == "run")
            .expect("run span present");
        assert_eq!(run.ph, "X");
        assert!(run.dur > 0.0);
        for event in &trace.traceEvents {
            assert_eq!(event.ph, "X");
            assert!(event.ts >= 0.0);
            assert!(event.dur >= 0.0);
            if event.name != "run" {
                assert_eq!(event.tid, run.tid, "same lane so the viewer nests");
                assert!(
                    event.ts >= run.ts && event.ts + event.dur <= run.ts + run.dur + 1.0,
                    "node span [{}, {}] must nest inside run [{}, {}]",
                    event.ts,
                    event.ts + event.dur,
                    run.ts,
                    run.ts + run.dur,
                );
                assert_eq!(event.args.scheme, "winograd");
                assert_eq!(event.args.bytes, 64);
            }
        }

        // Raw-string sanity: the literal field names the format requires.
        for key in ["\"traceEvents\"", "\"ph\"", "\"ts\"", "\"dur\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
