//! The opt-in per-op runtime profiler.
//!
//! A [`Profiler`] is shared (`Arc`) between whoever wants the data and the
//! sessions producing it (`SessionConfig::builder().profiling(...)` in
//! `mnn-core`). Each session run opens a [`RunRecorder`], which buffers one
//! [`SpanRecord`] per executed node *locally* — the profiler's lock is taken
//! once per run, at [`RunRecorder::finish`], never per node. When the
//! profiler is disabled ([`Profiler::set_enabled`]) `begin_run` returns
//! `None` and the execution loop takes no timestamps at all.
//!
//! Aggregation is incremental: per-node statistics are folded into a map at
//! `finish`, so [`Profiler::report`] is exact over the profiler's whole
//! lifetime even though the raw span ring kept for chrome-trace export
//! ([`Profiler::chrome_trace`]) is bounded.

use crate::trace;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Raw spans retained for chrome-trace export. Aggregated statistics (the
/// [`ProfileReport`]) are unaffected by this bound.
const MAX_TRACE_SPANS: usize = 16_384;

/// One timed region: either a whole session run or a single executed node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Node name, or `"run"` for a whole-run span.
    pub name: String,
    /// Operator type (`conv2d`, `matmul`, …); `"session"` for run spans.
    pub op: String,
    /// Kernel scheme chosen for the node (`winograd`, `im2col`, `-`).
    pub scheme: String,
    /// Backend placement (`cpu-f32`, `cpu-i8`, …).
    pub placement: String,
    /// Output shape signature, e.g. `1x16x32x32`.
    pub shape: String,
    /// Start time in microseconds since the profiler was created.
    pub start_us: f64,
    /// Wall-clock duration, microseconds.
    pub dur_us: f64,
    /// Bytes read + written by the node (activation traffic).
    pub bytes: u64,
    /// Index of the session run this span belongs to (0-based).
    pub run: u64,
    /// 32-hex-digit id of the request trace active when the span was
    /// recorded (empty when the run was not inside a trace scope).
    pub trace_id: String,
}

#[derive(Debug, Default, Clone)]
struct NodeStat {
    op: String,
    scheme: String,
    placement: String,
    shape: String,
    count: u64,
    total_us: f64,
    max_us: f64,
    bytes: u64,
}

#[derive(Debug, Default)]
struct ProfilerInner {
    runs: u64,
    /// Sum of whole-run wall times, µs.
    run_us: f64,
    /// Sum of per-node wall times, µs.
    node_us: f64,
    nodes: BTreeMap<String, NodeStat>,
    /// Recent raw spans (runs and nodes interleaved) for trace export.
    spans: VecDeque<SpanRecord>,
}

/// Collects per-node execution spans across session runs (see the
/// [module docs](self)).
pub struct Profiler {
    enabled: AtomicBool,
    epoch: Instant,
    inner: Mutex<ProfilerInner>,
}

impl fmt::Debug for Profiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.is_enabled())
            .field("runs", &self.lock().runs)
            .finish()
    }
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// A new, enabled profiler.
    pub fn new() -> Self {
        Profiler {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            inner: Mutex::new(ProfilerInner::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ProfilerInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Toggle span collection. While disabled, [`Profiler::begin_run`]
    /// returns `None` and instrumented code takes no timestamps.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether spans are currently collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Open a recorder for one session run, or `None` when disabled. The
    /// single atomic load here is the entire disabled-path cost.
    ///
    /// When a request trace scope is active on the calling thread (see
    /// [`crate::context::scope`]), every span of the run is stamped with
    /// its trace id, keying the profiler ring by request.
    pub fn begin_run(self: &Arc<Self>) -> Option<RunRecorder> {
        if !self.is_enabled() {
            return None;
        }
        Some(RunRecorder {
            profiler: Arc::clone(self),
            run_start: Instant::now(),
            trace_id: crate::context::current_trace_id_hex().unwrap_or_default(),
            spans: Vec::new(),
        })
    }

    /// Number of completed runs recorded.
    pub fn runs(&self) -> u64 {
        self.lock().runs
    }

    /// Drop all recorded spans and statistics (the enabled flag and time
    /// epoch are kept).
    pub fn reset(&self) {
        let mut inner = self.lock();
        *inner = ProfilerInner::default();
    }

    /// Aggregate everything recorded so far into a [`ProfileReport`].
    pub fn report(&self) -> ProfileReport {
        let inner = self.lock();
        let wall_ms = inner.run_us / 1_000.0;
        let accounted_ms = inner.node_us / 1_000.0;
        let denom = if inner.node_us > 0.0 {
            inner.node_us
        } else {
            1.0
        };

        let mut ops: BTreeMap<&str, (u64, f64)> = BTreeMap::new();
        for stat in inner.nodes.values() {
            let entry = ops.entry(stat.op.as_str()).or_insert((0, 0.0));
            entry.0 += stat.count;
            entry.1 += stat.total_us;
        }
        let mut ops: Vec<OpBreakdown> = ops
            .into_iter()
            .map(|(op, (count, total_us))| OpBreakdown {
                op: op.to_string(),
                count,
                total_ms: total_us / 1_000.0,
                percent: 100.0 * total_us / denom,
            })
            .collect();
        ops.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));

        let mut nodes: Vec<NodeBreakdown> = inner
            .nodes
            .iter()
            .map(|(name, stat)| NodeBreakdown {
                name: name.clone(),
                op: stat.op.clone(),
                scheme: stat.scheme.clone(),
                placement: stat.placement.clone(),
                shape: stat.shape.clone(),
                count: stat.count,
                total_ms: stat.total_us / 1_000.0,
                mean_us: stat.total_us / stat.count.max(1) as f64,
                max_us: stat.max_us,
                percent: 100.0 * stat.total_us / denom,
                bytes: stat.bytes,
            })
            .collect();
        nodes.sort_by(|a, b| b.total_ms.total_cmp(&a.total_ms));

        let coverage = if inner.run_us > 0.0 {
            inner.node_us / inner.run_us
        } else {
            0.0
        };
        ProfileReport {
            runs: inner.runs,
            wall_time_ms: wall_ms,
            accounted_ms,
            coverage,
            ops,
            nodes,
        }
    }

    /// Export the retained raw spans as chrome://tracing Trace Event Format
    /// JSON (load via `chrome://tracing` or <https://ui.perfetto.dev>).
    pub fn chrome_trace(&self) -> String {
        let inner = self.lock();
        let spans: Vec<&SpanRecord> = inner.spans.iter().collect();
        trace::render(&spans)
    }
}

/// Per-run span buffer handed out by [`Profiler::begin_run`]. Records locally
/// and folds into the profiler once, on [`RunRecorder::finish`].
pub struct RunRecorder {
    profiler: Arc<Profiler>,
    run_start: Instant,
    trace_id: String,
    spans: Vec<SpanRecord>,
}

impl RunRecorder {
    /// Record one executed node. `started` is the `Instant` taken immediately
    /// before the kernel ran; duration is measured to *now*, so call this
    /// right after the kernel returns.
    #[allow(clippy::too_many_arguments)]
    pub fn record_node(
        &mut self,
        name: &str,
        op: &str,
        scheme: &str,
        placement: &str,
        shape: &str,
        started: Instant,
        bytes: u64,
    ) {
        let dur_us = started.elapsed().as_secs_f64() * 1e6;
        let start_us = started
            .checked_duration_since(self.profiler.epoch)
            .unwrap_or_default()
            .as_secs_f64()
            * 1e6;
        self.spans.push(SpanRecord {
            name: name.to_string(),
            op: op.to_string(),
            scheme: scheme.to_string(),
            placement: placement.to_string(),
            shape: shape.to_string(),
            start_us,
            dur_us,
            bytes,
            run: 0, // assigned at finish()
            trace_id: self.trace_id.clone(),
        });
    }

    /// Close the run: computes the whole-run span and folds everything into
    /// the profiler under one lock acquisition.
    pub fn finish(self) {
        let run_dur_us = self.run_start.elapsed().as_secs_f64() * 1e6;
        let run_start_us = self
            .run_start
            .checked_duration_since(self.profiler.epoch)
            .unwrap_or_default()
            .as_secs_f64()
            * 1e6;
        let mut inner = self.profiler.lock();
        let run_index = inner.runs;
        inner.runs += 1;
        inner.run_us += run_dur_us;
        push_span(
            &mut inner.spans,
            SpanRecord {
                name: "run".to_string(),
                op: "session".to_string(),
                scheme: "-".to_string(),
                placement: "-".to_string(),
                shape: "-".to_string(),
                start_us: run_start_us,
                dur_us: run_dur_us,
                bytes: 0,
                run: run_index,
                trace_id: self.trace_id.clone(),
            },
        );
        for mut span in self.spans {
            span.run = run_index;
            inner.node_us += span.dur_us;
            let stat = inner.nodes.entry(span.name.clone()).or_default();
            if stat.count == 0 {
                stat.op = span.op.clone();
            }
            // Scheme/placement/shape can change across resizes; report the
            // most recent.
            stat.scheme = span.scheme.clone();
            stat.placement = span.placement.clone();
            stat.shape = span.shape.clone();
            stat.count += 1;
            stat.total_us += span.dur_us;
            stat.max_us = stat.max_us.max(span.dur_us);
            stat.bytes = stat.bytes.saturating_add(span.bytes);
            push_span(&mut inner.spans, span);
        }
    }
}

fn push_span(spans: &mut VecDeque<SpanRecord>, span: SpanRecord) {
    if spans.len() == MAX_TRACE_SPANS {
        spans.pop_front();
    }
    spans.push_back(span);
}

/// Aggregate totals for one operator type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpBreakdown {
    /// Operator type (`conv2d`, `relu`, …).
    pub op: String,
    /// Executed node-instances of this type across all runs.
    pub count: u64,
    /// Total wall time, milliseconds.
    pub total_ms: f64,
    /// Share of all per-node time, percent.
    pub percent: f64,
}

/// Aggregate statistics for one graph node across runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeBreakdown {
    /// Node name (unique within the graph).
    pub name: String,
    /// Operator type.
    pub op: String,
    /// Kernel scheme last used for this node.
    pub scheme: String,
    /// Backend placement last used for this node.
    pub placement: String,
    /// Output shape signature last seen.
    pub shape: String,
    /// Times this node executed.
    pub count: u64,
    /// Total wall time, milliseconds.
    pub total_ms: f64,
    /// Mean wall time per execution, microseconds.
    pub mean_us: f64,
    /// Slowest single execution, microseconds.
    pub max_us: f64,
    /// Share of all per-node time, percent.
    pub percent: f64,
    /// Cumulative activation bytes moved.
    pub bytes: u64,
}

/// The live Fig.-8 table: per-op-type totals and the hottest nodes, with how
/// much of the measured wall time the per-node spans account for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Completed session runs in the profile.
    pub runs: u64,
    /// Total whole-run wall time, milliseconds.
    pub wall_time_ms: f64,
    /// Wall time accounted for by per-node spans, milliseconds.
    pub accounted_ms: f64,
    /// `accounted_ms / wall_time_ms` as a fraction (scheduling overhead is
    /// the remainder).
    pub coverage: f64,
    /// Per-operator-type totals, hottest first.
    pub ops: Vec<OpBreakdown>,
    /// Per-node statistics, hottest first.
    pub nodes: Vec<NodeBreakdown>,
}

impl ProfileReport {
    /// A copy keeping only the `n` hottest nodes (op totals are unchanged).
    pub fn top(&self, n: usize) -> ProfileReport {
        let mut report = self.clone();
        report.nodes.truncate(n);
        report
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "profile: {} run(s), {:.3} ms wall, {:.3} ms in {} node(s) ({:.1}% accounted)",
            self.runs,
            self.wall_time_ms,
            self.accounted_ms,
            self.nodes.len(),
            100.0 * self.coverage,
        )?;
        writeln!(
            f,
            "  {:<12} {:>7} {:>12} {:>7}",
            "OP", "COUNT", "TOTAL_MS", "%"
        )?;
        for op in &self.ops {
            writeln!(
                f,
                "  {:<12} {:>7} {:>12.3} {:>6.1}%",
                op.op, op.count, op.total_ms, op.percent
            )?;
        }
        writeln!(
            f,
            "  {:<24} {:<8} {:<10} {:<12} {:>10} {:>9} {:>6}",
            "NODE", "OP", "SCHEME", "SHAPE", "MEAN_US", "TOTAL_MS", "%"
        )?;
        for node in &self.nodes {
            writeln!(
                f,
                "  {:<24} {:<8} {:<10} {:<12} {:>10.1} {:>9.3} {:>5.1}%",
                node.name,
                node.op,
                node.scheme,
                node.shape,
                node.mean_us,
                node.total_ms,
                node.percent
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spin(d: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < d {
            std::hint::black_box(0u64);
        }
    }

    fn record_run(profiler: &Arc<Profiler>, node_ms: &[(&str, &str, u64)]) {
        let mut rec = profiler.begin_run().expect("enabled");
        for (name, op, ms) in node_ms {
            let t0 = Instant::now();
            spin(Duration::from_millis(*ms));
            rec.record_node(name, op, "direct", "cpu-f32", "1x8x4x4", t0, 128);
        }
        rec.finish();
    }

    #[test]
    fn disabled_profiler_returns_no_recorder() {
        let profiler = Arc::new(Profiler::new());
        profiler.set_enabled(false);
        assert!(profiler.begin_run().is_none());
        profiler.set_enabled(true);
        assert!(profiler.begin_run().is_some());
    }

    #[test]
    fn report_aggregates_and_orders_by_heat() {
        let profiler = Arc::new(Profiler::new());
        record_run(&profiler, &[("conv1", "conv2d", 8), ("act1", "relu", 1)]);
        record_run(&profiler, &[("conv1", "conv2d", 8), ("act1", "relu", 1)]);
        let report = profiler.report();
        assert_eq!(report.runs, 2);
        assert_eq!(report.nodes.len(), 2);
        assert_eq!(report.nodes[0].name, "conv1", "hottest node first");
        assert_eq!(report.nodes[0].count, 2);
        assert!(report.nodes[0].total_ms >= 16.0);
        assert_eq!(report.nodes[0].bytes, 256);
        assert_eq!(report.ops[0].op, "conv2d");
        assert!(report.ops[0].percent > report.ops[1].percent);
        let pct: f64 = report.ops.iter().map(|o| o.percent).sum();
        assert!((pct - 100.0).abs() < 1e-6, "op percentages sum to 100");
        // Spans cover nearly all of the run (the loop body *is* the run).
        assert!(report.coverage > 0.95, "coverage = {}", report.coverage);
        assert!(report.coverage <= 1.0 + 1e-9);

        let shown = format!("{report}");
        assert!(shown.contains("conv1"), "{shown}");
        assert!(shown.contains("conv2d"), "{shown}");

        profiler.reset();
        assert_eq!(profiler.report().runs, 0);
    }

    #[test]
    fn top_truncates_nodes_only() {
        let profiler = Arc::new(Profiler::new());
        record_run(
            &profiler,
            &[("a", "conv2d", 2), ("b", "relu", 1), ("c", "pool", 1)],
        );
        let top = profiler.report().top(1);
        assert_eq!(top.nodes.len(), 1);
        assert_eq!(top.ops.len(), 3);
    }

    #[test]
    fn report_round_trips_through_json() {
        let profiler = Arc::new(Profiler::new());
        record_run(&profiler, &[("conv1", "conv2d", 2)]);
        let report = profiler.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
