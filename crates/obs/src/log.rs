//! Leveled structured logging with an `MNN_LOG` environment filter and an
//! injectable sink.
//!
//! The facade is deliberately tiny: a level check (one relaxed atomic load,
//! so disabled levels cost nothing and format no arguments), then a dynamic
//! sink call. The default sink writes `[LEVEL target] message` lines to
//! stderr; servers and tests can swap it ([`set_sink`]) to capture records
//! as data.
//!
//! ```
//! mnn_obs::info!("my-app", "loaded {} model(s)", 3);
//! mnn_obs::warn!("my-app", "tuning cache not persisted");
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// The operation failed; someone should look.
    Error = 1,
    /// Something degraded but the process carries on (e.g. a cache persist
    /// failure falling back to re-tuning).
    Warn = 2,
    /// Lifecycle milestones: models loaded, server listening, drain started.
    Info = 3,
    /// Per-request / per-plan detail.
    Debug = 4,
    /// Everything, including hot-path detail.
    Trace = 5,
}

impl Level {
    /// Uppercase name, fixed width 5 (`ERROR`, `WARN `, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    fn from_env_str(s: &str) -> Option<u8> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(0),
            "error" => Some(Level::Error as u8),
            "warn" | "warning" => Some(Level::Warn as u8),
            "info" => Some(Level::Info as u8),
            "debug" => Some(Level::Debug as u8),
            "trace" => Some(Level::Trace as u8),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where log records go. Implementations must be cheap and non-blocking-ish:
/// they run inline at the call site.
pub trait LogSink: Send + Sync {
    /// Consume one record. `message` is already formatted.
    fn log(&self, level: Level, target: &str, message: &str);
}

/// The default sink: `[LEVEL target] message` lines on stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl LogSink for StderrSink {
    fn log(&self, level: Level, target: &str, message: &str) {
        eprintln!("[{} {target}] {message}", level.as_str());
    }
}

/// 0 = off, 1..=5 = max enabled level, u8::MAX = "not yet initialized from
/// the environment".
static MAX_LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

fn sink_slot() -> &'static RwLock<Arc<dyn LogSink>> {
    static SINK: OnceLock<RwLock<Arc<dyn LogSink>>> = OnceLock::new();
    SINK.get_or_init(|| RwLock::new(Arc::new(StderrSink)))
}

/// Default maximum level when `MNN_LOG` is unset or unparseable.
pub const DEFAULT_LEVEL: Level = Level::Info;

#[cold]
fn init_from_env() -> u8 {
    let level = std::env::var("MNN_LOG")
        .ok()
        .and_then(|v| Level::from_env_str(&v))
        .unwrap_or(DEFAULT_LEVEL as u8);
    MAX_LEVEL.store(level, Ordering::Relaxed);
    level
}

/// Whether records at `level` are currently emitted. The check the [`log!`]
/// macro performs before formatting anything.
#[inline]
pub fn enabled(level: Level) -> bool {
    let mut max = MAX_LEVEL.load(Ordering::Relaxed);
    if max == u8::MAX {
        max = init_from_env();
    }
    level as u8 <= max
}

/// Override the maximum emitted level (wins over `MNN_LOG`). `None` disables
/// logging entirely.
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map(|l| l as u8).unwrap_or(0), Ordering::Relaxed);
}

/// Replace the global sink, returning the previous one. Applies process-wide
/// and immediately.
pub fn set_sink(sink: Arc<dyn LogSink>) -> Arc<dyn LogSink> {
    let slot = sink_slot();
    let mut guard = slot.write().unwrap_or_else(|e| e.into_inner());
    std::mem::replace(&mut *guard, sink)
}

/// Deliver one pre-checked record to the sink. Call through [`log!`] (which
/// performs the level check) rather than directly.
///
/// When a request trace scope is active on the calling thread (see
/// [`crate::context::scope`]), the message is suffixed with
/// ` trace_id=<32 hex>` so log lines correlate with the flight recorder.
/// Outside any scope that check is one relaxed atomic load.
pub fn emit(level: Level, target: &str, args: fmt::Arguments<'_>) {
    let sink = {
        let guard = sink_slot().read().unwrap_or_else(|e| e.into_inner());
        Arc::clone(&*guard)
    };
    let mut message = args.to_string();
    if let Some(trace_id) = crate::context::current_trace_id_hex() {
        message.push_str(" trace_id=");
        message.push_str(&trace_id);
    }
    sink.log(level, target, &message);
}

/// Log at an explicit [`Level`]: `log!(Level::Info, "target", "fmt {}", x)`.
///
/// Arguments are not formatted (or even evaluated) when the level is
/// disabled.
#[macro_export]
macro_rules! log {
    ($level:expr, $target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($level) {
            $crate::log::emit($level, $target, format_args!($($arg)+));
        }
    };
}

/// Log at [`Level::Error`](crate::Level::Error).
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => { $crate::log!($crate::Level::Error, $target, $($arg)+) };
}

/// Log at [`Level::Warn`](crate::Level::Warn).
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => { $crate::log!($crate::Level::Warn, $target, $($arg)+) };
}

/// Log at [`Level::Info`](crate::Level::Info).
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => { $crate::log!($crate::Level::Info, $target, $($arg)+) };
}

/// Log at [`Level::Debug`](crate::Level::Debug).
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => { $crate::log!($crate::Level::Debug, $target, $($arg)+) };
}

/// Log at [`Level::Trace`](crate::Level::Trace).
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)+) => { $crate::log!($crate::Level::Trace, $target, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct CaptureSink {
        records: Mutex<Vec<(Level, String, String)>>,
    }

    impl LogSink for CaptureSink {
        fn log(&self, level: Level, target: &str, message: &str) {
            self.records
                .lock()
                .unwrap()
                .push((level, target.to_string(), message.to_string()));
        }
    }

    /// One test covers every global-state behavior (level filter, sink swap,
    /// lazy-argument guarantee): the sink and level are process-wide, so
    /// splitting these into parallel #[test]s would race.
    #[test]
    fn facade_filters_formats_and_routes() {
        let capture = Arc::new(CaptureSink {
            records: Mutex::new(Vec::new()),
        });
        let previous = set_sink(capture.clone());
        set_max_level(Some(Level::Info));

        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));

        crate::info!("test-target", "answer is {}", 42);
        let mut evaluated = false;
        crate::debug!("test-target", "{}", {
            evaluated = true;
            "dropped"
        });
        assert!(!evaluated, "disabled levels must not evaluate arguments");

        set_max_level(None);
        crate::error!("test-target", "suppressed");
        assert!(!enabled(Level::Error));

        set_max_level(Some(Level::Trace));
        crate::trace!("test-target", "fine-grained");

        // Lines emitted inside a trace scope carry trace_id=.
        let ctx = crate::context::TraceContext::generate();
        {
            let _scope = crate::context::scope(ctx, std::time::Instant::now(), None);
            crate::info!("test-target", "traced line");
        }
        crate::info!("test-target", "untagged again");

        let records = capture.records.lock().unwrap().clone();
        set_sink(previous);
        set_max_level(Some(DEFAULT_LEVEL));

        assert_eq!(records.len(), 4);
        assert_eq!(records[0].0, Level::Info);
        assert_eq!(records[0].1, "test-target");
        assert_eq!(records[0].2, "answer is 42");
        assert_eq!(records[1].0, Level::Trace);
        assert_eq!(records[1].2, "fine-grained");
        assert_eq!(
            records[2].2,
            format!("traced line trace_id={}", ctx.trace_id_hex())
        );
        assert_eq!(records[3].2, "untagged again");
    }

    #[test]
    fn env_values_parse() {
        assert_eq!(Level::from_env_str("off"), Some(0));
        assert_eq!(Level::from_env_str("ERROR"), Some(1));
        assert_eq!(Level::from_env_str(" warn "), Some(2));
        assert_eq!(Level::from_env_str("Info"), Some(3));
        assert_eq!(Level::from_env_str("debug"), Some(4));
        assert_eq!(Level::from_env_str("trace"), Some(5));
        assert_eq!(Level::from_env_str("verbose"), None);
    }

    #[test]
    fn levels_order_and_display() {
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::Warn.to_string(), "WARN");
    }
}
