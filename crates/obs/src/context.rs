//! Request-scoped trace context: W3C `traceparent` ids, an ambient
//! per-thread scope, and op-span capture for the layer that runs kernels.
//!
//! A [`TraceContext`] is the wire identity of one request — a 128-bit trace
//! id plus a 64-bit span id, formatted and parsed as a W3C Trace Context
//! `traceparent` header. The serving stack creates (or adopts) one per
//! request at the HTTP frontend and carries it through queueing, batching
//! and inference.
//!
//! The *ambient* half of this module lets layers that never see the request
//! object participate in the trace. A worker thread enters a
//! [`scope`] around a session run; while the guard lives:
//!
//! * [`current`] returns the active context (used by the log facade to tag
//!   lines with `trace_id=`, and by the profiler to stamp spans),
//! * [`begin_op_capture`] hands the session executor an [`OpCapture`] that
//!   records per-op spans on the *request's* timebase.
//!
//! When no scope is active anywhere in the process, every entry point here
//! is a single relaxed atomic load — the same disabled-path contract the
//! profiler proves in CI.

use crate::profile::SpanRecord;
use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// The identity of one request: W3C Trace Context ids plus flags.
///
/// Ids are never zero (the W3C spec reserves all-zero ids as invalid), so
/// `TraceContext` values always denote a real trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// 128-bit trace id shared by every span of the request.
    pub trace_id: u128,
    /// 64-bit id of the current span within the trace.
    pub span_id: u64,
    /// W3C trace flags (bit 0 = sampled).
    pub flags: u8,
}

impl TraceContext {
    /// A freshly generated root context (new trace id, new span id,
    /// sampled).
    pub fn generate() -> Self {
        TraceContext {
            trace_id: nonzero_u128(),
            span_id: nonzero_u64(),
            flags: 0x01,
        }
    }

    /// A child context: same trace id, fresh span id.
    pub fn child(&self) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            span_id: nonzero_u64(),
            flags: self.flags,
        }
    }

    /// Parse a W3C `traceparent` header value
    /// (`00-<32 hex>-<16 hex>-<2 hex>`). Returns `None` for malformed
    /// values, unknown lengths, the reserved version `ff`, or all-zero ids.
    pub fn parse_traceparent(value: &str) -> Option<Self> {
        let value = value.trim();
        let mut parts = value.split('-');
        let version = parts.next()?;
        let trace_id = parts.next()?;
        let span_id = parts.next()?;
        let flags = parts.next()?;
        if version.len() != 2 || !is_lower_hex(version) || version == "ff" {
            return None;
        }
        // Future versions may append fields; version 00 must have exactly 4.
        if version == "00" && parts.next().is_some() {
            return None;
        }
        if trace_id.len() != 32 || !is_lower_hex(trace_id) {
            return None;
        }
        if span_id.len() != 16 || !is_lower_hex(span_id) {
            return None;
        }
        if flags.len() != 2 || !is_lower_hex(flags) {
            return None;
        }
        let trace_id = u128::from_str_radix(trace_id, 16).ok()?;
        let span_id = u64::from_str_radix(span_id, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            span_id,
            flags: u8::from_str_radix(flags, 16).ok()?,
        })
    }

    /// Format as a W3C `traceparent` header value.
    pub fn traceparent(&self) -> String {
        format!(
            "00-{:032x}-{:016x}-{:02x}",
            self.trace_id, self.span_id, self.flags
        )
    }

    /// The 32-hex-digit trace id.
    pub fn trace_id_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }

    /// The 16-hex-digit span id.
    pub fn span_id_hex(&self) -> String {
        format!("{:016x}", self.span_id)
    }
}

impl fmt::Display for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.traceparent())
    }
}

fn is_lower_hex(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// splitmix64 finalizer: cheap, well-mixed ids without a rand dependency.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn raw_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_nanos() as u64;
    mix64(nanos ^ mix64(count) ^ (std::process::id() as u64) << 32)
}

fn nonzero_u64() -> u64 {
    loop {
        let id = raw_id();
        if id != 0 {
            return id;
        }
    }
}

fn nonzero_u128() -> u128 {
    loop {
        let id = ((raw_id() as u128) << 64) | raw_id() as u128;
        if id != 0 {
            return id;
        }
    }
}

/// Count of live [`TraceScope`] guards across all threads. Zero means no
/// trace is active anywhere, so the ambient entry points can bail after one
/// relaxed load.
static ACTIVE_SCOPES: AtomicUsize = AtomicUsize::new(0);

#[derive(Clone)]
struct ScopeData {
    ctx: TraceContext,
    epoch: Instant,
    ops: Option<Arc<Mutex<Vec<SpanRecord>>>>,
}

thread_local! {
    static CURRENT: RefCell<Vec<ScopeData>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`scope`]; leaving the scope (drop) deactivates
/// the context on this thread. Not `Send`: a scope belongs to the thread
/// that opened it.
pub struct TraceScope {
    _not_send: PhantomData<*const ()>,
}

/// Activate `ctx` on the current thread until the returned guard drops.
///
/// `epoch` is the request's start instant: spans captured inside the scope
/// (see [`begin_op_capture`]) are timed relative to it, so op spans land on
/// the request's waterfall timebase. `ops`, when given, receives those
/// captured spans.
pub fn scope(
    ctx: TraceContext,
    epoch: Instant,
    ops: Option<Arc<Mutex<Vec<SpanRecord>>>>,
) -> TraceScope {
    CURRENT.with(|current| {
        current.borrow_mut().push(ScopeData { ctx, epoch, ops });
    });
    ACTIVE_SCOPES.fetch_add(1, Ordering::Relaxed);
    TraceScope {
        _not_send: PhantomData,
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        ACTIVE_SCOPES.fetch_sub(1, Ordering::Relaxed);
        CURRENT.with(|current| {
            current.borrow_mut().pop();
        });
    }
}

/// The context active on this thread, if any. One relaxed atomic load when
/// no trace is active anywhere in the process.
#[inline]
pub fn current() -> Option<TraceContext> {
    if ACTIVE_SCOPES.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CURRENT.with(|current| current.borrow().last().map(|scope| scope.ctx))
}

/// The active trace id as 32 hex digits, if a scope is active on this
/// thread. Same disabled-path cost as [`current`].
#[inline]
pub fn current_trace_id_hex() -> Option<String> {
    current().map(|ctx| ctx.trace_id_hex())
}

/// Per-run op-span capture handed to the session executor by
/// [`begin_op_capture`]. Mirrors the profiler's `RunRecorder`, but spans are
/// timed relative to the *request's* start and delivered to the active
/// trace when the capture drops.
pub struct OpCapture {
    epoch: Instant,
    trace_id: String,
    sink: Arc<Mutex<Vec<SpanRecord>>>,
    spans: Vec<SpanRecord>,
}

/// Open an op capture against the active scope, or `None` when no scope
/// with an op sink is active on this thread. One relaxed atomic load when
/// tracing is inactive process-wide.
#[inline]
pub fn begin_op_capture() -> Option<OpCapture> {
    if ACTIVE_SCOPES.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CURRENT.with(|current| {
        let current = current.borrow();
        let scope = current.last()?;
        let sink = scope.ops.as_ref()?;
        Some(OpCapture {
            epoch: scope.epoch,
            trace_id: scope.ctx.trace_id_hex(),
            sink: Arc::clone(sink),
            spans: Vec::new(),
        })
    })
}

impl OpCapture {
    /// Record one executed node. `started` is the `Instant` taken
    /// immediately before the kernel ran; duration is measured to *now*.
    #[allow(clippy::too_many_arguments)]
    pub fn record_node(
        &mut self,
        name: &str,
        op: &str,
        scheme: &str,
        placement: &str,
        shape: &str,
        started: Instant,
        bytes: u64,
    ) {
        let dur_us = started.elapsed().as_secs_f64() * 1e6;
        let start_us = started
            .checked_duration_since(self.epoch)
            .unwrap_or_default()
            .as_secs_f64()
            * 1e6;
        self.spans.push(SpanRecord {
            name: name.to_string(),
            op: op.to_string(),
            scheme: scheme.to_string(),
            placement: placement.to_string(),
            shape: shape.to_string(),
            start_us,
            dur_us,
            bytes,
            run: 0,
            trace_id: self.trace_id.clone(),
        });
    }
}

impl Drop for OpCapture {
    fn drop(&mut self) {
        if self.spans.is_empty() {
            return;
        }
        let mut sink = self.sink.lock().unwrap_or_else(PoisonError::into_inner);
        sink.append(&mut self.spans);
    }
}

/// Whether the `MNN_TRACE` environment variable leaves tracing enabled
/// (anything but `off` / `0` / `false` does). Serving layers use this as
/// the *default*; explicit configuration always wins.
pub fn env_tracing_enabled() -> bool {
    match std::env::var("MNN_TRACE") {
        Ok(value) => {
            let value = value.trim().to_ascii_lowercase();
            !matches!(value.as_str(), "off" | "0" | "false")
        }
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_contexts_are_distinct_and_nonzero() {
        let a = TraceContext::generate();
        let b = TraceContext::generate();
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.span_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.span_id, b.span_id);
        let child = a.child();
        assert_eq!(child.trace_id, a.trace_id);
        assert_ne!(child.span_id, a.span_id);
    }

    #[test]
    fn traceparent_round_trips() {
        let ctx = TraceContext::generate();
        let header = ctx.traceparent();
        assert_eq!(header.len(), 55);
        let back = TraceContext::parse_traceparent(&header).expect("round trip");
        assert_eq!(back, ctx);

        let fixed = TraceContext::parse_traceparent(
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
        )
        .expect("spec example parses");
        assert_eq!(fixed.trace_id, 0x0af7651916cd43dd8448eb211c80319c);
        assert_eq!(fixed.span_id, 0xb7ad6b7169203331);
        assert_eq!(fixed.flags, 1);
        assert_eq!(
            fixed.traceparent(),
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
        );
    }

    #[test]
    fn malformed_traceparents_are_rejected() {
        for bad in [
            "",
            "00",
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331", // missing flags
            "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // reserved version
            "00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
            "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero span id
            "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", // uppercase
            "00-0af7651916cd43dd8448eb211c8031-b7ad6b7169203331-01", // short trace id
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", // v00 extras
        ] {
            assert!(
                TraceContext::parse_traceparent(bad).is_none(),
                "{bad:?} must not parse"
            );
        }
    }

    #[test]
    fn ambient_scope_exposes_context_and_captures_ops() {
        assert!(current().is_none(), "no ambient context outside a scope");
        assert!(begin_op_capture().is_none());

        let ctx = TraceContext::generate();
        let epoch = Instant::now();
        let ops = Arc::new(Mutex::new(Vec::new()));
        {
            let _guard = scope(ctx, epoch, Some(Arc::clone(&ops)));
            assert_eq!(current(), Some(ctx));
            assert_eq!(current_trace_id_hex(), Some(ctx.trace_id_hex()));

            let mut capture = begin_op_capture().expect("sink is attached");
            let t0 = Instant::now();
            capture.record_node("conv1", "conv2d", "direct", "cpu-f32", "1x8x4x4", t0, 64);
            drop(capture);

            // Nested scope shadows, then restores.
            let inner_ctx = TraceContext::generate();
            {
                let _inner = scope(inner_ctx, Instant::now(), None);
                assert_eq!(current(), Some(inner_ctx));
                assert!(begin_op_capture().is_none(), "inner scope has no sink");
            }
            assert_eq!(current(), Some(ctx));
        }
        assert!(current().is_none(), "scope deactivates on drop");

        let recorded = ops.lock().unwrap();
        assert_eq!(recorded.len(), 1);
        assert_eq!(recorded[0].name, "conv1");
        assert_eq!(recorded[0].trace_id, ctx.trace_id_hex());
        assert!(recorded[0].start_us >= 0.0);
    }

    #[test]
    fn scopes_are_thread_local() {
        let ctx = TraceContext::generate();
        let _guard = scope(ctx, Instant::now(), None);
        let seen = std::thread::spawn(current).join().unwrap();
        assert!(seen.is_none(), "other threads must not observe the scope");
    }
}
