//! The flight recorder: bounded retention of completed request traces.
//!
//! Serving layers build one [`RequestTrace`] per request through an
//! [`ActiveTrace`] handle — a clone-able builder that rides the request
//! object across threads (HTTP connection thread → queue → batch worker →
//! back) accumulating stage spans, per-op spans and batch links. When the
//! request's response is written, [`ActiveTrace::finish`] seals the trace
//! and pushes it into a [`FlightRecorder`]:
//!
//! * a **ring** of the last N completed traces (per-slot locks, a single
//!   atomic fetch-add picks the slot, so writers never contend on one
//!   global lock), and
//! * a **slow reservoir** that always keeps the most recent traces slower
//!   than a configurable threshold, so one fast burst cannot evict the
//!   evidence of a tail-latency incident.
//!
//! Both are exported as JSON (`GET /v1/traces` in `mnn-http`) and as
//! chrome://tracing Trace Event Format ([`FlightRecorder::chrome_trace`]),
//! merging request-level stage spans and op-level kernel spans into one
//! nested timeline.
//!
//! When the recorder is disabled, [`FlightRecorder::begin_trace`] returns
//! `None` after a single relaxed atomic load — instrumented code takes no
//! timestamps at all, matching the profiler's disabled-path contract.

use crate::context::TraceContext;
use crate::profile::SpanRecord;
use crate::trace::{self, TraceArgs, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Completed request traces retained in the ring by default.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Slow traces retained in the reservoir.
const SLOW_CAPACITY: usize = 64;

/// Default slow-request threshold: 250 ms.
const DEFAULT_SLOW_THRESHOLD_US: u64 = 250_000;

/// One named, timed stage of a request (`parse`, `queue_wait`, …).
///
/// `start_us` is relative to the request's start; `depth` encodes nesting
/// (0 = top-level waterfall stage, 1 = sub-stage such as `queue_wait`
/// inside `serve`, 2 = per-op kernel spans).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSpan {
    /// Stage name (`parse`, `decode`, `serve`, `queue_wait`, …).
    pub name: String,
    /// Nesting depth: 0 for top-level stages, deeper for sub-stages.
    pub depth: u64,
    /// Start offset from the request's start, microseconds.
    pub start_us: f64,
    /// Wall-clock duration, microseconds.
    pub dur_us: f64,
}

/// The batch span that linked this request with its co-batched peers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchLink {
    /// Span id of the batch execution, shared by all members.
    pub span_id: String,
    /// Number of requests the batch coalesced.
    pub size: u64,
    /// Trace ids of every traced member, in batch order.
    pub members: Vec<String>,
}

/// One completed request trace: identity, outcome, and the stage waterfall.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// 32-hex-digit trace id.
    pub trace_id: String,
    /// 16-hex-digit span id of the request's root span.
    pub span_id: String,
    /// Span id of the caller's span when the context was adopted from a
    /// `traceparent` header; empty for locally created traces.
    pub parent_span_id: String,
    /// The outgoing `traceparent` header value for this request.
    pub traceparent: String,
    /// Whether the context was adopted from the client.
    pub adopted: bool,
    /// Model the request targeted (empty when it never reached a model).
    pub model: String,
    /// Response status code (HTTP), or 0 when unknown.
    pub status: u64,
    /// Request start, milliseconds since the Unix epoch.
    pub start_unix_ms: u64,
    /// Total wall time from accept to response write, microseconds.
    pub total_us: f64,
    /// Fraction of `total_us` covered by top-level (depth-0) stages.
    pub coverage: f64,
    /// Whether the trace exceeded the recorder's slow threshold.
    pub slow: bool,
    /// The stage waterfall, ordered by start time.
    pub stages: Vec<StageSpan>,
    /// Per-op kernel spans captured during inference, on the request's
    /// timebase.
    pub ops: Vec<SpanRecord>,
    /// Batch linkage, when the request was coalesced into a micro-batch.
    pub batch: Option<BatchLink>,
}

struct TraceState {
    model: String,
    stages: Vec<StageSpan>,
    batch: Option<BatchLink>,
    finished: bool,
}

struct ActiveInner {
    ctx: TraceContext,
    parent_span_id: Option<u64>,
    adopted: bool,
    started: Instant,
    start_unix_ms: u64,
    finish_on_fulfill: bool,
    recorder: Arc<FlightRecorder>,
    ops: Arc<Mutex<Vec<SpanRecord>>>,
    state: Mutex<TraceState>,
}

/// Clone-able handle accumulating one in-flight request's trace. Created by
/// [`FlightRecorder::begin_trace`]; sealed by [`ActiveTrace::finish`].
#[derive(Clone)]
pub struct ActiveTrace {
    inner: Arc<ActiveInner>,
}

impl std::fmt::Debug for ActiveTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveTrace")
            .field("trace_id", &self.inner.ctx.trace_id_hex())
            .finish()
    }
}

impl ActiveTrace {
    /// The request's trace context (for response headers and child spans).
    pub fn context(&self) -> TraceContext {
        self.inner.ctx
    }

    /// The 32-hex-digit trace id.
    pub fn trace_id_hex(&self) -> String {
        self.inner.ctx.trace_id_hex()
    }

    /// The outgoing `traceparent` header value.
    pub fn traceparent(&self) -> String {
        self.inner.ctx.traceparent()
    }

    /// The instant the request started (the waterfall's time zero).
    pub fn started(&self) -> Instant {
        self.inner.started
    }

    /// Record a completed stage spanning `start..end`.
    pub fn add_stage(&self, name: &str, depth: u64, start: Instant, end: Instant) {
        let start_us = start
            .checked_duration_since(self.inner.started)
            .unwrap_or_default()
            .as_secs_f64()
            * 1e6;
        let dur_us = end
            .checked_duration_since(start)
            .unwrap_or_default()
            .as_secs_f64()
            * 1e6;
        let mut state = self.lock();
        state.stages.push(StageSpan {
            name: name.to_string(),
            depth,
            start_us,
            dur_us,
        });
    }

    /// Record a stage running from `start` until now.
    pub fn stage_since(&self, name: &str, depth: u64, start: Instant) {
        self.add_stage(name, depth, start, Instant::now());
    }

    /// Name the model this request targeted.
    pub fn set_model(&self, model: &str) {
        self.lock().model = model.to_string();
    }

    /// Link this request to the micro-batch that executed it.
    pub fn set_batch(&self, span_id: &str, members: Vec<String>) {
        self.lock().batch = Some(BatchLink {
            span_id: span_id.to_string(),
            size: members.len().max(1) as u64,
            members,
        });
    }

    /// The sink op spans captured inside a [`crate::context::scope`] land
    /// in; pass it to the scope guarding the session run.
    pub fn ops_sink(&self) -> Arc<Mutex<Vec<SpanRecord>>> {
        Arc::clone(&self.inner.ops)
    }

    /// Enter this trace's ambient scope on the current thread (activates
    /// `trace_id=` log tagging, profiler span stamping, and op capture).
    pub fn enter(&self) -> crate::context::TraceScope {
        crate::context::scope(
            self.inner.ctx,
            self.inner.started,
            Some(Arc::clone(&self.inner.ops)),
        )
    }

    /// Whether the layer that fulfils the response slot should finish this
    /// trace (set for traces the serve layer created itself; traces created
    /// by the HTTP frontend are finished after the response write instead).
    pub fn finishes_on_fulfill(&self) -> bool {
        self.inner.finish_on_fulfill
    }

    /// Seal the trace with a response `status` and push it into the
    /// recorder. Idempotent: the first call wins, later calls are no-ops.
    pub fn finish(&self, status: u64) {
        let total_us = self.inner.started.elapsed().as_secs_f64() * 1e6;
        let mut state = self.lock();
        if state.finished {
            return;
        }
        state.finished = true;
        let mut stages = std::mem::take(&mut state.stages);
        stages.sort_by(|a, b| {
            a.depth
                .cmp(&b.depth)
                .then(a.start_us.total_cmp(&b.start_us))
        });
        let covered: f64 = stages
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.dur_us)
            .sum();
        let coverage = if total_us > 0.0 {
            (covered / total_us).min(1.0)
        } else {
            0.0
        };
        let ops = std::mem::take(
            &mut *self
                .inner
                .ops
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        let slow = total_us
            >= self
                .inner
                .recorder
                .slow_threshold_us
                .load(Ordering::Relaxed) as f64;
        let trace = RequestTrace {
            trace_id: self.inner.ctx.trace_id_hex(),
            span_id: self.inner.ctx.span_id_hex(),
            parent_span_id: self
                .inner
                .parent_span_id
                .map(|id| format!("{id:016x}"))
                .unwrap_or_default(),
            traceparent: self.inner.ctx.traceparent(),
            adopted: self.inner.adopted,
            model: std::mem::take(&mut state.model),
            status,
            start_unix_ms: self.inner.start_unix_ms,
            total_us,
            coverage,
            slow,
            stages,
            ops,
            batch: state.batch.take(),
        };
        drop(state);
        self.inner.recorder.push(Arc::new(trace));
    }
}

/// Bounded retention of completed request traces (see the
/// [module docs](self)).
pub struct FlightRecorder {
    enabled: AtomicBool,
    slow_threshold_us: AtomicU64,
    next_slot: AtomicUsize,
    completed: AtomicU64,
    ring: Vec<Mutex<Option<Arc<RequestTrace>>>>,
    slow: Mutex<VecDeque<Arc<RequestTrace>>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .field("completed", &self.completed())
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A recorder retaining the default number of traces
    /// ([`DEFAULT_RING_CAPACITY`]), enabled.
    pub fn new() -> Self {
        FlightRecorder::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A recorder retaining the last `capacity` traces (minimum 1), enabled.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            enabled: AtomicBool::new(true),
            slow_threshold_us: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_US),
            next_slot: AtomicUsize::new(0),
            completed: AtomicU64::new(0),
            ring: (0..capacity).map(|_| Mutex::new(None)).collect(),
            slow: Mutex::new(VecDeque::new()),
        }
    }

    /// Toggle trace collection. While disabled,
    /// [`FlightRecorder::begin_trace`] returns `None` after one relaxed
    /// atomic load and instrumented code takes no timestamps.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether traces are currently collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Set the slow-request threshold for the always-kept reservoir.
    pub fn set_slow_threshold(&self, threshold: Duration) {
        self.slow_threshold_us
            .store(threshold.as_micros() as u64, Ordering::Relaxed);
    }

    /// The current slow-request threshold.
    pub fn slow_threshold(&self) -> Duration {
        Duration::from_micros(self.slow_threshold_us.load(Ordering::Relaxed))
    }

    /// Open a trace for a request starting *now*. See
    /// [`FlightRecorder::begin_trace_at`].
    pub fn begin_trace(self: &Arc<Self>, parent: Option<TraceContext>) -> Option<ActiveTrace> {
        self.begin_trace_at(parent, Instant::now())
    }

    /// Open a trace whose waterfall starts at `started` (pass the instant
    /// the first request byte was seen so parse time is attributed).
    ///
    /// `parent`, when given, is an adopted client context: the trace keeps
    /// its trace id, records its span id as the parent, and issues a fresh
    /// span id for the request's root span. Returns `None` when disabled —
    /// the single relaxed atomic load is the entire disabled-path cost.
    pub fn begin_trace_at(
        self: &Arc<Self>,
        parent: Option<TraceContext>,
        started: Instant,
    ) -> Option<ActiveTrace> {
        if !self.is_enabled() {
            return None;
        }
        Some(self.begin_trace_inner(parent, started, false))
    }

    /// Like [`FlightRecorder::begin_trace_at`], but the trace is finished
    /// by the layer that fulfils the response slot (used by `mnn-serve` for
    /// requests submitted without an HTTP frontend).
    pub fn begin_owned_trace_at(
        self: &Arc<Self>,
        parent: Option<TraceContext>,
        started: Instant,
    ) -> Option<ActiveTrace> {
        if !self.is_enabled() {
            return None;
        }
        Some(self.begin_trace_inner(parent, started, true))
    }

    fn begin_trace_inner(
        self: &Arc<Self>,
        parent: Option<TraceContext>,
        started: Instant,
        finish_on_fulfill: bool,
    ) -> ActiveTrace {
        let (ctx, parent_span_id, adopted) = match parent {
            Some(parent) => (parent.child(), Some(parent.span_id), true),
            None => (TraceContext::generate(), None, false),
        };
        let start_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_millis() as u64;
        ActiveTrace {
            inner: Arc::new(ActiveInner {
                ctx,
                parent_span_id,
                adopted,
                started,
                start_unix_ms,
                finish_on_fulfill,
                recorder: Arc::clone(self),
                ops: Arc::new(Mutex::new(Vec::new())),
                state: Mutex::new(TraceState {
                    model: String::new(),
                    stages: Vec::new(),
                    batch: None,
                    finished: false,
                }),
            }),
        }
    }

    fn push(&self, trace: Arc<RequestTrace>) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if trace.slow {
            let mut slow = self.slow.lock().unwrap_or_else(PoisonError::into_inner);
            if slow.len() == SLOW_CAPACITY {
                slow.pop_front();
            }
            slow.push_back(Arc::clone(&trace));
        }
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed) % self.ring.len();
        *self.ring[slot]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(trace);
    }

    /// Total traces completed over the recorder's lifetime.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// The retained traces, most recent first.
    pub fn recent(&self) -> Vec<Arc<RequestTrace>> {
        let mut traces: Vec<Arc<RequestTrace>> = self
            .ring
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(PoisonError::into_inner).clone())
            .collect();
        traces.sort_by(|a, b| {
            b.start_unix_ms
                .cmp(&a.start_unix_ms)
                .then_with(|| a.trace_id.cmp(&b.trace_id))
        });
        traces
    }

    /// The slow-request reservoir, most recent last.
    pub fn slow(&self) -> Vec<Arc<RequestTrace>> {
        self.slow
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Look a trace up by its 32-hex-digit trace id, searching the ring
    /// first and the slow reservoir second.
    pub fn find(&self, trace_id: &str) -> Option<Arc<RequestTrace>> {
        self.recent()
            .into_iter()
            .find(|t| t.trace_id == trace_id)
            .or_else(|| {
                self.slow()
                    .into_iter()
                    .rev()
                    .find(|t| t.trace_id == trace_id)
            })
    }

    /// Render `traces` as chrome://tracing Trace Event Format JSON: one
    /// thread lane per request, request/stage/op spans merged into one
    /// nested timeline (load via `chrome://tracing` or
    /// <https://ui.perfetto.dev>).
    pub fn chrome_trace(traces: &[Arc<RequestTrace>]) -> String {
        let mut events = Vec::new();
        for (index, request) in traces.iter().enumerate() {
            let tid = index as u64 + 1;
            let args = |detail: &str| TraceArgs {
                op: detail.to_string(),
                scheme: "-".to_string(),
                placement: "-".to_string(),
                shape: request.trace_id.clone(),
                bytes: 0,
                run: request.status,
            };
            events.push(TraceEvent {
                name: format!(
                    "request {} ({})",
                    &request.trace_id[..8.min(request.trace_id.len())],
                    request.model
                ),
                cat: "request".to_string(),
                ph: "X".to_string(),
                ts: 0.0,
                dur: request.total_us,
                pid: 1,
                tid,
                args: args("request"),
            });
            for stage in &request.stages {
                events.push(TraceEvent {
                    name: stage.name.clone(),
                    cat: "stage".to_string(),
                    ph: "X".to_string(),
                    ts: stage.start_us,
                    dur: stage.dur_us,
                    pid: 1,
                    tid,
                    args: args(&stage.name),
                });
            }
            for op in &request.ops {
                events.push(TraceEvent {
                    name: op.name.clone(),
                    cat: "op".to_string(),
                    ph: "X".to_string(),
                    ts: op.start_us,
                    dur: op.dur_us,
                    pid: 1,
                    tid,
                    args: TraceArgs {
                        op: op.op.clone(),
                        scheme: op.scheme.clone(),
                        placement: op.placement.clone(),
                        shape: op.shape.clone(),
                        bytes: op.bytes,
                        run: op.run,
                    },
                });
            }
        }
        trace::render_events(events)
    }
}

impl ActiveTrace {
    fn lock(&self) -> MutexGuard<'_, TraceState> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(d: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < d {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn disabled_recorder_hands_out_no_traces() {
        let recorder = Arc::new(FlightRecorder::new());
        recorder.set_enabled(false);
        assert!(recorder.begin_trace(None).is_none());
        recorder.set_enabled(true);
        assert!(recorder.begin_trace(None).is_some());
    }

    #[test]
    fn finished_traces_land_in_the_ring_with_coverage() {
        let recorder = Arc::new(FlightRecorder::new());
        let start = Instant::now();
        let trace = recorder.begin_trace_at(None, start).unwrap();
        trace.set_model("tiny-cnn");
        spin(Duration::from_millis(2));
        let mid = Instant::now();
        trace.add_stage("parse", 0, start, mid);
        spin(Duration::from_millis(2));
        trace.add_stage("serve", 0, mid, Instant::now());
        trace.add_stage("queue_wait", 1, mid, Instant::now());
        trace.finish(200);
        trace.finish(500); // idempotent: first status wins

        assert_eq!(recorder.completed(), 1);
        let recent = recorder.recent();
        assert_eq!(recent.len(), 1);
        let got = &recent[0];
        assert_eq!(got.model, "tiny-cnn");
        assert_eq!(got.status, 200);
        assert_eq!(got.stages.len(), 3);
        assert!(got.coverage > 0.9, "coverage = {}", got.coverage);
        assert!(got.coverage <= 1.0);
        assert!(!got.adopted);
        assert_eq!(got.parent_span_id, "");
        assert_eq!(recorder.find(&got.trace_id).unwrap().trace_id, got.trace_id);
        assert!(recorder.find("ffffffffffffffffffffffffffffffff").is_none());
    }

    #[test]
    fn adopted_contexts_keep_the_trace_id_and_record_the_parent() {
        let recorder = Arc::new(FlightRecorder::new());
        let parent = TraceContext::parse_traceparent(
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
        )
        .unwrap();
        let trace = recorder.begin_trace(Some(parent)).unwrap();
        assert_eq!(trace.context().trace_id, parent.trace_id);
        assert_ne!(trace.context().span_id, parent.span_id);
        trace.finish(200);
        let got = recorder.find("0af7651916cd43dd8448eb211c80319c").unwrap();
        assert!(got.adopted);
        assert_eq!(got.parent_span_id, "b7ad6b7169203331");
    }

    #[test]
    fn ring_is_bounded_and_slow_reservoir_survives_fast_bursts() {
        let recorder = Arc::new(FlightRecorder::with_capacity(4));
        recorder.set_slow_threshold(Duration::from_millis(1));

        // One slow trace...
        let slow_start = Instant::now();
        let trace = recorder.begin_trace_at(None, slow_start).unwrap();
        spin(Duration::from_millis(2));
        trace.finish(200);
        let slow_id = recorder.recent()[0].trace_id.clone();

        // ...then a burst of fast ones that evicts it from the ring.
        for _ in 0..8 {
            recorder.begin_trace(None).unwrap().finish(200);
        }
        assert_eq!(recorder.recent().len(), 4, "ring is bounded");
        assert!(
            recorder.recent().iter().all(|t| t.trace_id != slow_id),
            "slow trace evicted from the ring"
        );
        let slow = recorder.slow();
        assert_eq!(slow.len(), 1, "reservoir keeps the slow trace");
        assert_eq!(slow[0].trace_id, slow_id);
        assert!(slow[0].slow);
        assert_eq!(recorder.find(&slow_id).unwrap().trace_id, slow_id);
        assert_eq!(recorder.completed(), 9);
    }

    #[test]
    fn concurrent_finishes_keep_ring_and_reservoir_bounded() {
        // Hammer a tiny ring from many threads at once: the per-slot locks
        // plus the fetch-add slot counter must keep both stores bounded and
        // every retained trace intact — no slot may hold a torn or duplicate
        // entry, and the completed counter must see every finish exactly once.
        const THREADS: usize = 8;
        const PER_THREAD: usize = 100;
        const RING: usize = 8;

        let recorder = Arc::new(FlightRecorder::with_capacity(RING));
        // Zero threshold: every trace is "slow", so the reservoir's own
        // bound is exercised by the same storm.
        recorder.set_slow_threshold(Duration::ZERO);

        std::thread::scope(|scope| {
            for worker in 0..THREADS {
                let recorder = Arc::clone(&recorder);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let trace = recorder.begin_trace(None).unwrap();
                        trace.set_model(&format!("m{worker}"));
                        let start = trace.started();
                        trace.add_stage("serve", 0, start, Instant::now());
                        trace.finish(200 + (i % 2) as u64);
                    }
                });
            }
        });

        assert_eq!(recorder.completed(), (THREADS * PER_THREAD) as u64);
        let recent = recorder.recent();
        assert_eq!(recent.len(), RING, "ring stays exactly at capacity");
        let slow = recorder.slow();
        assert_eq!(slow.len(), SLOW_CAPACITY, "reservoir stays at capacity");

        // Retained traces are whole: valid ids, a model name one of the
        // workers wrote, the stage that thread recorded — and no duplicates.
        let mut seen = std::collections::BTreeSet::new();
        for trace in recent.iter().chain(slow.iter()) {
            assert_eq!(trace.trace_id.len(), 32);
            assert!(trace.model.starts_with('m'), "model = {:?}", trace.model);
            assert_eq!(trace.stages.len(), 1);
            assert_eq!(trace.stages[0].name, "serve");
            assert!(trace.slow);
            seen.insert(trace.trace_id.clone());
        }
        // The ring and the reservoir may overlap, but within themselves
        // every entry is a distinct request.
        let ring_ids: std::collections::BTreeSet<_> =
            recent.iter().map(|t| t.trace_id.clone()).collect();
        assert_eq!(ring_ids.len(), recent.len(), "no duplicate ring slots");
        assert!(seen.len() >= SLOW_CAPACITY);
    }

    #[test]
    fn batch_links_and_ops_round_trip_through_json() {
        let recorder = Arc::new(FlightRecorder::new());
        let trace = recorder.begin_trace(None).unwrap();
        trace.set_model("m");
        trace.set_batch(
            "00000000000000aa",
            vec![trace.trace_id_hex(), "deadbeef".into()],
        );
        {
            let _scope = trace.enter();
            let mut capture = crate::context::begin_op_capture().unwrap();
            capture.record_node(
                "conv1",
                "conv2d",
                "direct",
                "cpu-f32",
                "1x8x4x4",
                Instant::now(),
                64,
            );
        }
        trace.finish(200);

        let got = recorder.recent().remove(0);
        let batch = got.batch.as_ref().expect("batch link kept");
        assert_eq!(batch.size, 2);
        assert_eq!(batch.members.len(), 2);
        assert_eq!(got.ops.len(), 1);
        assert_eq!(got.ops[0].trace_id, got.trace_id);

        let json = serde_json::to_string(&*got).unwrap();
        let back: RequestTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, *got);
    }

    #[test]
    fn chrome_trace_merges_stages_and_ops_per_request_lane() {
        let recorder = Arc::new(FlightRecorder::new());
        let start = Instant::now();
        let trace = recorder.begin_trace_at(None, start).unwrap();
        spin(Duration::from_millis(1));
        trace.add_stage("parse", 0, start, Instant::now());
        {
            let _scope = trace.enter();
            let mut capture = crate::context::begin_op_capture().unwrap();
            let t0 = Instant::now();
            spin(Duration::from_millis(1));
            capture.record_node("conv1", "conv2d", "direct", "cpu-f32", "1x8x4x4", t0, 64);
        }
        trace.finish(200);

        let traces = recorder.recent();
        let json = FlightRecorder::chrome_trace(&traces);
        for key in [
            "\"traceEvents\"",
            "\"ph\"",
            "\"request",
            "\"parse\"",
            "\"conv1\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let parsed: crate::trace::ChromeTrace = serde_json::from_str(&json).unwrap();
        // request span + parse stage + 1 op span
        assert_eq!(parsed.traceEvents.len(), 3);
    }
}
