//! Profiling-off overhead guard.
//!
//! The profiler's contract is "near-zero overhead when off": a session with a
//! *disabled* profiler attached must run as fast as a session with no
//! profiler at all (the hot loop's only extra work is one relaxed atomic
//! load). This bench times both and **asserts** the ratio, so a regression
//! that sneaks always-on timers into the execution loop fails CI instead of
//! silently taxing every inference.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mnn_core::{Interpreter, Session, SessionConfig};
use mnn_graph::{Conv2dAttrs, GraphBuilder};
use mnn_obs::Profiler;
use mnn_tensor::{Shape, Tensor};
use std::sync::Arc;
use std::time::Instant;

fn bench_graph() -> mnn_graph::Graph {
    let mut b = GraphBuilder::new("obs-overhead");
    let x = b.input("x", Shape::nchw(1, 8, 32, 32));
    let c1 = b.conv2d_auto("conv1", x, Conv2dAttrs::same_3x3(8, 16), true);
    let c2 = b.conv2d_auto("conv2", c1, Conv2dAttrs::same_3x3(16, 16), true);
    b.build(vec![c2])
}

fn make_session(profiler: Option<Arc<Profiler>>) -> Session {
    let interpreter = Interpreter::from_graph(bench_graph()).expect("valid graph");
    let mut builder = SessionConfig::builder().threads(1);
    if let Some(profiler) = profiler {
        builder = builder.profiling(profiler);
    }
    interpreter
        .create_session(builder.build())
        .expect("session builds")
}

/// Mean wall time per run over `iters` runs (after warm-up).
fn mean_run_ns(session: &mut Session, input: &Tensor, iters: usize) -> f64 {
    for _ in 0..10 {
        black_box(session.run(std::slice::from_ref(input)).unwrap());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(session.run(std::slice::from_ref(input)).unwrap());
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn assert_profiling_off_is_free() {
    let input = Tensor::full(Shape::nchw(1, 8, 32, 32), 0.5);
    let mut plain = make_session(None);
    let profiler = Arc::new(Profiler::new());
    profiler.set_enabled(false);
    let mut attached = make_session(Some(profiler.clone()));

    const ITERS: usize = 30;
    // Timing on shared CI machines is noisy; accept the best of several
    // attempts before declaring a regression.
    let mut best_ratio = f64::INFINITY;
    for _ in 0..5 {
        // Interleave the measurements so frequency scaling hits both equally.
        let base = mean_run_ns(&mut plain, &input, ITERS);
        let off = mean_run_ns(&mut attached, &input, ITERS);
        best_ratio = best_ratio.min(off / base);
        if best_ratio <= 1.10 {
            break;
        }
    }
    assert_eq!(profiler.runs(), 0, "disabled profiler must record nothing");
    assert!(
        best_ratio <= 1.25,
        "disabled profiling costs {:.1}% per run — the off path must stay free",
        (best_ratio - 1.0) * 100.0
    );
    println!("profiling-off overhead: best ratio {best_ratio:.3} (<= 1.25 required)");
}

fn benches(c: &mut Criterion) {
    let input = Tensor::full(Shape::nchw(1, 8, 32, 32), 0.5);
    let mut group = c.benchmark_group("run");

    let mut plain = make_session(None);
    group.bench_function(BenchmarkId::from_parameter("no_profiler"), |b| {
        b.iter(|| black_box(plain.run(std::slice::from_ref(&input)).unwrap()))
    });

    let off = Arc::new(Profiler::new());
    off.set_enabled(false);
    let mut attached = make_session(Some(off));
    group.bench_function(BenchmarkId::from_parameter("profiler_disabled"), |b| {
        b.iter(|| black_box(attached.run(std::slice::from_ref(&input)).unwrap()))
    });

    let on = Arc::new(Profiler::new());
    on.set_enabled(true);
    let mut profiled = make_session(Some(on));
    group.bench_function(BenchmarkId::from_parameter("profiler_enabled"), |b| {
        b.iter(|| black_box(profiled.run(std::slice::from_ref(&input)).unwrap()))
    });
    group.finish();

    assert_profiling_off_is_free();
}

criterion_group!(overhead, benches);
criterion_main!(overhead);
