//! Device fingerprinting: the key that scopes tuning measurements to the
//! machine (and configuration) they were taken on.
//!
//! A tuning cache is only valid for the hardware and thread budget that
//! produced it — a Winograd tile that wins on an AVX2 laptop with 8 threads may
//! lose on a 2-thread container. The fingerprint captures exactly the inputs
//! that change kernel timings: CPU architecture, detected SIMD features, the
//! worker thread count, and the backend descriptor the measurements ran
//! against. A persisted cache whose fingerprint differs from the current
//! process is ignored (re-tuned), never trusted.

use mnn_backend::BackendDescriptor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of the device + configuration a set of tuning measurements is
/// valid for.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DeviceFingerprint {
    /// Target architecture (`x86_64`, `aarch64`, …).
    pub arch: String,
    /// Detected CPU SIMD features relevant to kernel speed, comma-separated
    /// (empty when detection is unavailable for the architecture).
    pub cpu_features: String,
    /// Worker thread count the measurements were taken with.
    pub threads: usize,
    /// Canonical description of the backend the candidates ran on (forward
    /// type + estimated FLOPS).
    pub backend: String,
    /// The kernel set the process dispatches with (`scalar`, `avx2fma`,
    /// `neon`). Distinct from `cpu_features`: the hardware may support AVX2
    /// while `MNN_SIMD=scalar` forces the scalar set, and measurements taken
    /// under one set must never be trusted under another. Cache files written
    /// before this field existed fail to parse (and are additionally rejected
    /// by the format-version bump), so they degrade to a re-tune.
    pub kernel_set: String,
}

impl DeviceFingerprint {
    /// Fingerprint the current process for measurements taken with `threads`
    /// workers on the backend described by `descriptor`.
    pub fn detect(threads: usize, descriptor: &BackendDescriptor) -> Self {
        DeviceFingerprint {
            arch: std::env::consts::ARCH.to_string(),
            cpu_features: detected_cpu_features(),
            threads,
            backend: format!(
                "{}@{:.0}mflops",
                descriptor.forward_type,
                descriptor.flops / 1e6
            ),
            kernel_set: mnn_kernels::simd::active_kernel_set().to_string(),
        }
    }

    /// Canonical single-string form, used as the in-process registry key.
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.arch, self.cpu_features, self.threads, self.backend, self.kernel_set
        )
    }
}

impl fmt::Display for DeviceFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

/// SIMD features that materially change kernel timings, probed at run time
/// where the standard library supports it.
fn detected_cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut features = Vec::new();
        for (name, present) in [
            ("sse4.1", std::arch::is_x86_feature_detected!("sse4.1")),
            ("avx", std::arch::is_x86_feature_detected!("avx")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
        ] {
            if present {
                features.push(name);
            }
        }
        features.join(",")
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is baseline on aarch64.
        "neon".to_string()
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_backend::{Backend, CpuBackend};

    #[test]
    fn detection_is_stable_within_a_process() {
        let d = CpuBackend::new(4).descriptor();
        assert_eq!(
            DeviceFingerprint::detect(4, &d),
            DeviceFingerprint::detect(4, &d)
        );
    }

    #[test]
    fn thread_count_and_backend_change_the_fingerprint() {
        let d2 = CpuBackend::new(2).descriptor();
        let d4 = CpuBackend::new(4).descriptor();
        let f2 = DeviceFingerprint::detect(2, &d2);
        let f4 = DeviceFingerprint::detect(4, &d4);
        assert_ne!(f2, f4);
        assert_ne!(f2.key(), f4.key());
    }

    #[test]
    fn kernel_set_is_recorded_and_keyed() {
        let d = CpuBackend::new(2).descriptor();
        let fp = DeviceFingerprint::detect(2, &d);
        assert_eq!(fp.kernel_set, mnn_kernels::simd::active_kernel_set());
        assert!(!fp.kernel_set.is_empty());
        // A cache taken under a different kernel set (e.g. forced scalar, or a
        // NEON host) must not key-collide with this process.
        let foreign = DeviceFingerprint {
            kernel_set: "some-other-set".to_string(),
            ..fp.clone()
        };
        assert_ne!(fp, foreign);
        assert_ne!(fp.key(), foreign.key());
    }

    #[test]
    fn missing_kernel_set_field_is_a_parse_error_not_a_panic() {
        // Fingerprints written before the kernel_set field existed fail to
        // deserialize — the cache loader treats that as a corrupt file and
        // re-tunes rather than trusting measurements from an unknown set.
        let json = r#"{"arch":"x86_64","cpu_features":"avx2","threads":2,"backend":"CPU@1mflops"}"#;
        assert!(serde_json::from_str::<DeviceFingerprint>(json).is_err());
    }

    #[test]
    fn fingerprint_round_trips_through_serde() {
        let d = CpuBackend::new(3).descriptor();
        let fp = DeviceFingerprint::detect(3, &d);
        let json = serde_json::to_string(&fp).unwrap();
        let back: DeviceFingerprint = serde_json::from_str(&json).unwrap();
        assert_eq!(fp, back);
    }
}
