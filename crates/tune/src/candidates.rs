//! Candidate enumeration: which schemes the tuner measures for a graph node.
//!
//! Float convolutions take the CPU backend's full float pool
//! ([`ConvScheme::float_conv_pool`]); quantized convolutions add the integer
//! kernel and respect the quantizer's depthwise-stays-f32 rule
//! ([`mnn_converter::quantized_conv_candidates`]). Non-convolutions (and
//! quantized fully-connected layers, which have exactly one kernel) yield an
//! empty pool — there is nothing to measure.

use mnn_backend::ConvScheme;
use mnn_graph::{Node, Op};

/// The measurable scheme candidates for `node`, in deterministic order.
/// `max_tile` bounds the Winograd tile-size candidates. On hosts with an
/// active SIMD kernel set the pools include the SIMD twins of each scheme, so
/// scalar-vs-SIMD is decided by measurement per geometry. Returns an empty
/// pool for nodes with fewer than two viable kernels.
pub fn candidates_for_node(node: &Node, max_tile: usize) -> Vec<ConvScheme> {
    let pool = match &node.op {
        Op::Conv2d(attrs) | Op::Conv2dFused { attrs, .. } => {
            ConvScheme::float_conv_pool(&attrs.to_conv_params(), max_tile)
        }
        Op::Conv2dQuantized { attrs, .. } => {
            mnn_converter::quantized_conv_candidates(&attrs.to_conv_params(), max_tile)
        }
        _ => Vec::new(),
    };
    if pool.len() < 2 {
        return Vec::new();
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_graph::{Conv2dAttrs, GraphBuilder};
    use mnn_tensor::Shape;

    fn first_node(
        build: impl FnOnce(&mut GraphBuilder, mnn_graph::TensorId) -> mnn_graph::TensorId,
    ) -> Node {
        let mut b = GraphBuilder::new("cand");
        let x = b.input("x", Shape::nchw(1, 8, 16, 16));
        let y = build(&mut b, x);
        let g = b.build(vec![y]);
        g.nodes()[0].clone()
    }

    #[test]
    fn float_conv_enumerates_winograd_tiles() {
        let node = first_node(|b, x| b.conv2d_auto("c", x, Conv2dAttrs::same_3x3(8, 8), false));
        let pool = candidates_for_node(&node, 4);
        assert!(pool.contains(&ConvScheme::SlidingWindow));
        assert!(pool.contains(&ConvScheme::Im2col));
        assert!(pool.contains(&ConvScheme::Winograd { tile: 2 }));
        assert!(pool.contains(&ConvScheme::Winograd { tile: 4 }));
        assert!(!pool.contains(&ConvScheme::Winograd { tile: 5 }));
        assert!(!pool.contains(&ConvScheme::QuantizedGemm));
    }

    #[test]
    fn pointwise_conv_includes_strassen() {
        let node = first_node(|b, x| b.conv2d_auto("c", x, Conv2dAttrs::pointwise(8, 16), false));
        let pool = candidates_for_node(&node, 6);
        assert_eq!(pool[0], ConvScheme::Strassen1x1);
        assert!(pool.contains(&ConvScheme::SlidingWindow));
    }

    #[test]
    fn depthwise_conv_is_measurable_only_when_simd_offers_a_twin() {
        let node =
            first_node(|b, x| b.conv2d_auto("c", x, Conv2dAttrs::depthwise_3x3(8, 1), false));
        let pool = candidates_for_node(&node, 6);
        if mnn_kernels::simd::simd_available() {
            // scalar depthwise vs its SIMD twin: a real choice to measure.
            assert_eq!(pool, vec![ConvScheme::Depthwise, ConvScheme::DepthwiseSimd]);
        } else {
            // Single kernel, nothing to measure.
            assert!(pool.is_empty());
        }
    }

    #[test]
    fn float_pool_offers_simd_twins_only_when_available() {
        let node = first_node(|b, x| b.conv2d_auto("c", x, Conv2dAttrs::same_3x3(8, 8), false));
        let pool = candidates_for_node(&node, 4);
        let has_simd = pool.iter().any(|s| s.is_simd());
        assert_eq!(has_simd, mnn_kernels::simd::simd_available());
    }

    #[test]
    fn non_convolutions_have_no_candidates() {
        let node = first_node(|b, x| b.activation("relu", x, mnn_graph::ActivationKind::Relu));
        assert!(candidates_for_node(&node, 6).is_empty());
    }
}
