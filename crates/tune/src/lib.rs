//! # `mnn-tune` — runtime kernel auto-tuning with a persistent, device-keyed cache
//!
//! The paper's core claim is that *semi-automated search* at pre-inference time
//! beats both hand-picked kernels and offline auto-tuning: the engine should
//! decide per layer, per device, per geometry which kernel to run — without
//! TVM-style minutes-to-hours tuning loops. `mnn-core`'s scheme selection
//! (Eq. 2–3) answers that with a closed-form cost model; this crate supplies
//! the *measured* alternative:
//!
//! * [`candidates_for_node`] — enumerate the kernels a node can actually run
//!   (float pool, integer pool for quantized convolutions).
//! * [`Tuner::measure_node`] — prepare each candidate through the real backend
//!   (`on_create`, so weight transforms stay outside the timed region), run it
//!   on the node's real geometry, and record the fastest.
//! * [`SharedTuneCache`] — one set of measurements per
//!   [`DeviceFingerprint`], shared by every session of the process (a
//!   `SessionPool` / `mnn-serve` deployment tunes **once**) and persisted to a
//!   versioned file so the *next* process performs **zero** measurements.
//! * [`calibrate`] — derive the cost model's constants (e.g. the int8
//!   discount) from the same measurement harness, so untuned sessions benefit
//!   too.
//!
//! Sessions opt in through `SessionConfig::builder().tuning(TuningMode::Full)`
//! in `mnn-core`; this crate is engine-agnostic plumbing and depends only on
//! the backend/graph layers.
//!
//! ## Cache validity
//!
//! Measurements are only meaningful on the machine (and thread budget) that
//! produced them, so every cache is keyed by a [`DeviceFingerprint`]
//! (architecture, detected SIMD features, thread count, backend descriptor) and
//! the persisted file embeds both that fingerprint and a format version.
//! Loading is forgiving by design: missing, corrupt, version-stale or
//! foreign-device files degrade to an empty cache (the engine re-tunes) —
//! never a panic, never an error that could down a serving process.

#![deny(missing_docs)]

pub mod cache;
pub mod calibrate;
mod candidates;
mod fingerprint;
mod signature;
mod timer;
mod tuner;

pub use cache::{CacheLoad, CandidateMeasurement, TuneCache, TuneEntry, TUNE_CACHE_VERSION};
pub use candidates::candidates_for_node;
pub use fingerprint::DeviceFingerprint;
pub use signature::OpSignature;
pub use timer::{CandidateTimer, FakeTimer, WallTimer};
pub use tuner::{
    clear_process_caches, default_cache_path, shared_cache, SharedTuneCache, Tuner, TuningStats,
};

use std::fmt;

/// How a session resolves convolution schemes (wired through
/// `SessionConfig::builder().tuning(...)` in `mnn-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TuningMode {
    /// Pure cost-model selection (Eq. 2–3); no measurements, no cache.
    #[default]
    Off,
    /// Use tuned schemes when the device-keyed cache (in-memory or persisted)
    /// already holds the node's signature; fall back to the cost model on a
    /// miss. Never measures — bounded, predictable preparation time.
    Cached,
    /// Like [`TuningMode::Cached`], but a miss micro-benchmarks every
    /// candidate on the node's real geometry and records the winner, so later
    /// sessions (and processes, via the persistent cache) skip the work.
    Full,
}

impl TuningMode {
    /// Whether this mode consults the tuning cache at all.
    pub fn is_enabled(self) -> bool {
        !matches!(self, TuningMode::Off)
    }

    /// Whether this mode may run measurements on a cache miss.
    pub fn measures(self) -> bool {
        matches!(self, TuningMode::Full)
    }
}

impl fmt::Display for TuningMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TuningMode::Off => "off",
            TuningMode::Cached => "cached",
            TuningMode::Full => "full",
        })
    }
}

impl std::str::FromStr for TuningMode {
    type Err = String;

    /// Parse the mode from its [`Display`](fmt::Display) form (case-insensitive),
    /// for command-line flags like `--tuning full`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Ok(TuningMode::Off),
            "cached" => Ok(TuningMode::Cached),
            "full" => Ok(TuningMode::Full),
            other => Err(format!(
                "unknown tuning mode '{other}' (expected off, cached or full)"
            )),
        }
    }
}

/// Errors surfaced by the measurement harness.
#[derive(Debug)]
pub enum TuneError {
    /// The node's input shape is unknown, so no measurement input can be built.
    MissingShape(String),
    /// No candidate could be prepared and validated for the node.
    NoCandidates(String),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::MissingShape(node) => {
                write!(f, "node '{node}' has no input shape to measure against")
            }
            TuneError::NoCandidates(node) => {
                write!(f, "no viable scheme candidate for node '{node}'")
            }
        }
    }
}

impl std::error::Error for TuneError {}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_backend::ConvScheme;

    #[test]
    fn tuning_mode_semantics() {
        assert!(!TuningMode::Off.is_enabled());
        assert!(TuningMode::Cached.is_enabled());
        assert!(!TuningMode::Cached.measures());
        assert!(TuningMode::Full.is_enabled());
        assert!(TuningMode::Full.measures());
        assert_eq!(TuningMode::default(), TuningMode::Off);
        assert_eq!(TuningMode::Full.to_string(), "full");
    }

    #[test]
    fn scheme_keys_round_trip_for_every_scheme() {
        for scheme in [
            ConvScheme::SlidingWindow,
            ConvScheme::Im2col,
            ConvScheme::Winograd { tile: 2 },
            ConvScheme::Winograd { tile: 6 },
            ConvScheme::Strassen1x1,
            ConvScheme::Depthwise,
            ConvScheme::QuantizedGemm,
        ] {
            assert_eq!(ConvScheme::parse(&scheme.to_string()), Some(scheme));
        }
        assert_eq!(ConvScheme::parse("winograd-F(1x1)"), None);
        assert_eq!(ConvScheme::parse("winograd-F(4x5)"), None);
        assert_eq!(ConvScheme::parse("nonsense"), None);
    }

    #[test]
    fn tuning_mode_round_trips_through_from_str() {
        for mode in [TuningMode::Off, TuningMode::Cached, TuningMode::Full] {
            assert_eq!(mode.to_string().parse::<TuningMode>(), Ok(mode));
        }
        assert_eq!("FULL".parse::<TuningMode>(), Ok(TuningMode::Full));
        assert!("warp-speed".parse::<TuningMode>().is_err());
    }
}
