//! Canonical operator signatures: the per-node key of the tuning cache.
//!
//! Two nodes that would compile to identical kernel invocations must produce
//! identical signatures — that is what lets one measurement serve every session
//! of a process (and, through the persistent cache, every future process on the
//! same device). The signature therefore encodes exactly the inputs the kernels
//! depend on: operator variant (float / fused / quantized), the full
//! convolution hyper-parameters, the fused activation, and the node's concrete
//! input geometry. Node *names* are deliberately excluded, so two layers with
//! the same shape share one measurement.

use mnn_graph::{Graph, Node, Op};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Canonical signature of a tunable operator at a concrete input geometry.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpSignature(String);

impl OpSignature {
    /// Wrap an already-canonical signature string (used when deserializing
    /// cache files).
    pub fn from_key(key: impl Into<String>) -> Self {
        OpSignature(key.into())
    }

    /// The canonical string form (the cache file key).
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Build the signature for `node`, or `None` when the node is not tunable
    /// (not a convolution) or its input shape is unknown.
    pub fn for_node(node: &Node, graph: &Graph) -> Option<OpSignature> {
        let (attrs, activation, quantized) = match &node.op {
            Op::Conv2d(attrs) => (attrs, None, false),
            Op::Conv2dFused { attrs, activation } => (attrs, Some(*activation), false),
            Op::Conv2dQuantized {
                attrs, activation, ..
            } => (attrs, Some(*activation), true),
            _ => return None,
        };
        let input = graph.tensor_info(*node.inputs.first()?).ok()?;
        let shape = input.shape.as_ref()?;
        if !shape.is_4d() {
            return None;
        }
        let key = format!(
            "conv{}:ic{}oc{},k{}x{},s{}x{},p{}x{}({:?}),d{}x{},g{},bias{},act{:?},in{}x{}x{}",
            if quantized { "-q" } else { "" },
            attrs.in_channels,
            attrs.out_channels,
            attrs.kernel.0,
            attrs.kernel.1,
            attrs.stride.0,
            attrs.stride.1,
            attrs.pad.0,
            attrs.pad.1,
            attrs.pad_kind,
            attrs.dilation.0,
            attrs.dilation.1,
            attrs.groups,
            u8::from(attrs.has_bias),
            activation,
            shape.batch(),
            shape.height(),
            shape.width(),
        );
        Some(OpSignature(key))
    }
}

impl fmt::Display for OpSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_graph::{Conv2dAttrs, GraphBuilder};
    use mnn_tensor::Shape;

    fn conv_graph(size: usize) -> Graph {
        let mut b = GraphBuilder::new("sig");
        let x = b.input("x", Shape::nchw(1, 3, size, size));
        let a = b.conv2d_auto("conv_a", x, Conv2dAttrs::same_3x3(3, 8), true);
        let _ = b.conv2d_auto("conv_b", a, Conv2dAttrs::same_3x3(8, 8), true);
        let y = b.conv2d_auto("conv_c", a, Conv2dAttrs::same_3x3(8, 8), true);
        let mut g = b.build(vec![y]);
        g.infer_shapes().unwrap();
        g
    }

    #[test]
    fn identical_geometry_shares_a_signature_regardless_of_name() {
        let g = conv_graph(16);
        let sig_b = OpSignature::for_node(&g.nodes()[1], &g).unwrap();
        let sig_c = OpSignature::for_node(&g.nodes()[2], &g).unwrap();
        assert_eq!(sig_b, sig_c);
        // …but the first layer (different channels) differs.
        let sig_a = OpSignature::for_node(&g.nodes()[0], &g).unwrap();
        assert_ne!(sig_a, sig_b);
    }

    #[test]
    fn geometry_changes_the_signature() {
        let g16 = conv_graph(16);
        let g32 = conv_graph(32);
        assert_ne!(
            OpSignature::for_node(&g16.nodes()[0], &g16).unwrap(),
            OpSignature::for_node(&g32.nodes()[0], &g32).unwrap()
        );
    }

    #[test]
    fn non_convolutions_are_not_tunable() {
        let mut b = GraphBuilder::new("sig");
        let x = b.input("x", Shape::nchw(1, 3, 8, 8));
        let y = b.activation("relu", x, mnn_graph::ActivationKind::Relu);
        let mut g = b.build(vec![y]);
        g.infer_shapes().unwrap();
        assert!(OpSignature::for_node(&g.nodes()[0], &g).is_none());
    }
}
