//! Candidate timing abstraction: wall-clock by default, injectable for
//! deterministic tests.
//!
//! The tuner never calls `Instant::now` directly — it asks a [`CandidateTimer`]
//! how long a candidate takes. Production uses [`WallTimer`] (real
//! micro-benchmarks via `mnn_backend::timing`); tests inject a [`FakeTimer`]
//! with scripted costs, which makes tuned plans a pure function of the script
//! and lets the determinism tests assert byte-stable outcomes.

use crate::signature::OpSignature;
use mnn_backend::timing::time_runs;
use mnn_backend::ConvScheme;
use std::collections::HashMap;

/// Times one tuning candidate. `run` performs a single execution of the
/// candidate kernel on the node's real geometry; implementations may invoke it
/// any number of times (including zero, for scripted timers) and return the
/// candidate's latency in milliseconds.
pub trait CandidateTimer: Send + Sync {
    /// Return the candidate's latency in milliseconds.
    fn time_candidate(
        &self,
        signature: &OpSignature,
        scheme: ConvScheme,
        run: &mut dyn FnMut(),
    ) -> f64;
}

/// The production timer: `warmup` untimed runs, then the minimum of `runs`
/// timed ones (least-noise estimator under background load).
#[derive(Debug, Clone, Copy)]
pub struct WallTimer {
    /// Untimed warm-up runs per candidate.
    pub warmup: usize,
    /// Timed runs per candidate (the minimum is reported).
    pub runs: usize,
}

impl Default for WallTimer {
    fn default() -> Self {
        // 5 timed runs (min kept): on hosts with background load, 3 samples
        // still mis-rank close candidates often enough to flip whole plans
        // between processes; the two extra samples cost prepare time once per
        // (device, geometry) — results persist in the cache — and make the
        // chosen plan reproducible.
        WallTimer { warmup: 1, runs: 5 }
    }
}

impl CandidateTimer for WallTimer {
    fn time_candidate(
        &self,
        _signature: &OpSignature,
        _scheme: ConvScheme,
        run: &mut dyn FnMut(),
    ) -> f64 {
        time_runs(self.warmup, self.runs, run)
    }
}

/// A scripted timer for tests: every scheme key maps to a fixed latency, so the
/// tuned plan is deterministic and independent of the host machine. Unknown
/// schemes get `default_ms`. The kernel is *not* executed.
#[derive(Debug, Clone, Default)]
pub struct FakeTimer {
    costs: HashMap<String, f64>,
    default_ms: f64,
}

impl FakeTimer {
    /// Script explicit costs per scheme key; unknown schemes cost `default_ms`.
    pub fn new(costs: &[(&str, f64)], default_ms: f64) -> Self {
        FakeTimer {
            costs: costs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            default_ms,
        }
    }

    /// Convenience: make the listed scheme keys win in order (cost 1.0, 2.0, …)
    /// with everything else at 1000.0.
    pub fn preferring(keys: &[&str]) -> Self {
        FakeTimer {
            costs: keys
                .iter()
                .enumerate()
                .map(|(i, k)| (k.to_string(), (i + 1) as f64))
                .collect(),
            default_ms: 1000.0,
        }
    }
}

impl CandidateTimer for FakeTimer {
    fn time_candidate(
        &self,
        _signature: &OpSignature,
        scheme: ConvScheme,
        _run: &mut dyn FnMut(),
    ) -> f64 {
        self.costs
            .get(&scheme.to_string())
            .copied()
            .unwrap_or(self.default_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fake_timer_is_scripted_and_never_runs_the_kernel() {
        let timer = FakeTimer::preferring(&["im2col", "sliding-window"]);
        let sig = OpSignature::from_key("x");
        let mut runs = 0usize;
        let mut bump = || runs += 1;
        assert_eq!(
            timer.time_candidate(&sig, ConvScheme::Im2col, &mut bump),
            1.0
        );
        assert_eq!(
            timer.time_candidate(&sig, ConvScheme::SlidingWindow, &mut bump),
            2.0
        );
        assert_eq!(
            timer.time_candidate(&sig, ConvScheme::Strassen1x1, &mut bump),
            1000.0
        );
        assert_eq!(runs, 0);
    }

    #[test]
    fn wall_timer_runs_the_kernel() {
        let timer = WallTimer { warmup: 1, runs: 2 };
        let sig = OpSignature::from_key("x");
        let mut runs = 0usize;
        let ms = timer.time_candidate(&sig, ConvScheme::Im2col, &mut || runs += 1);
        assert_eq!(runs, 3); // 1 warmup + 2 timed
        assert!(ms >= 0.0);
    }
}
