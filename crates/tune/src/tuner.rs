//! The tuner: measured scheme selection over a shared, persistent cache.
//!
//! A [`SharedTuneCache`] is a cheaply-clonable handle to one device-keyed set
//! of measurements plus its statistics counters. Handles obtained through
//! [`shared_cache`] are deduplicated process-wide by (fingerprint, path), so
//! every session of a process — including all workers of a
//! `SessionPool`/`mnn-serve` deployment — shares one tuning pass. When a path
//! is configured, the cache is loaded from disk on first open (a warm file
//! means *zero* measurements) and persisted after tuning.

use crate::cache::{
    load_cache_file, save_cache_file, CacheLoad, CandidateMeasurement, TuneCache, TuneEntry,
};
use crate::fingerprint::DeviceFingerprint;
use crate::signature::OpSignature;
use crate::timer::{CandidateTimer, WallTimer};
use crate::TuneError;
use mnn_backend::{Backend, ConvScheme, Execution, SchemeHint};
use mnn_graph::{Graph, Node};
use mnn_tensor::{Shape, Tensor};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Snapshot of a shared cache's counters — the observable evidence of how much
/// tuning work actually happened (the warm-start acceptance tests assert on
/// these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TuningStats {
    /// Nodes whose scheme was resolved by running measurements.
    pub tuned_nodes: u64,
    /// Individual candidate kernels that were micro-benchmarked.
    pub measured_candidates: u64,
    /// Lookups answered from the cache (in-memory or loaded from disk).
    pub cache_hits: u64,
    /// Lookups that found no entry.
    pub cache_misses: u64,
    /// Whether the backing file existed and matched on open.
    pub loaded_from_disk: bool,
}

impl std::fmt::Display for TuningStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tuned {} nodes ({} candidates measured), {} cache hits / {} misses{}",
            self.tuned_nodes,
            self.measured_candidates,
            self.cache_hits,
            self.cache_misses,
            if self.loaded_from_disk {
                ", warm-started from disk"
            } else {
                ""
            }
        )
    }
}

struct CacheInner {
    fingerprint: DeviceFingerprint,
    path: Option<PathBuf>,
    entries: Mutex<TuneCache>,
    dirty: AtomicBool,
    loaded_from_disk: bool,
    tuned_nodes: AtomicU64,
    measured_candidates: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Resource-ledger account (`scope="tune", component="tune_cache"`) and
    /// the bytes this cache currently has charged to it.
    ledger: mnn_obs::AccountedBytes,
    ledger_bytes: AtomicU64,
}

impl Drop for CacheInner {
    fn drop(&mut self) {
        self.ledger.sub(self.ledger_bytes.load(Ordering::Relaxed));
    }
}

/// A cheaply-clonable handle to one device-keyed tuning cache (entries +
/// statistics). All clones observe the same entries and counters.
#[derive(Clone)]
pub struct SharedTuneCache {
    inner: Arc<CacheInner>,
}

impl SharedTuneCache {
    /// Open a cache for `fingerprint`, loading `path` if it holds a matching
    /// persisted cache (any unusable file silently degrades to empty — see
    /// [`load_cache_file`]).
    ///
    /// This constructor always creates a *fresh* handle; use [`shared_cache`]
    /// to get the process-wide deduplicated one.
    pub fn open(fingerprint: DeviceFingerprint, path: Option<PathBuf>) -> Self {
        let load = match &path {
            Some(p) => load_cache_file(p, &fingerprint),
            None => CacheLoad::Missing,
        };
        let loaded_from_disk = load.is_loaded();
        let entries = load.into_cache();
        let cache = SharedTuneCache {
            inner: Arc::new(CacheInner {
                fingerprint,
                path,
                entries: Mutex::new(entries),
                dirty: AtomicBool::new(false),
                loaded_from_disk,
                tuned_nodes: AtomicU64::new(0),
                measured_candidates: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                cache_misses: AtomicU64::new(0),
                ledger: mnn_obs::resources::account("tune", "tune_cache"),
                ledger_bytes: AtomicU64::new(0),
            }),
        };
        // A warm-started cache reports its loaded size immediately; inserts
        // keep the figure current (see `refresh_ledger`).
        cache.refresh_ledger();
        cache
    }

    /// Re-measure the in-memory entries and move the ledger by the delta, so
    /// several live caches (tests, multiple fingerprints) sum correctly and a
    /// dropped cache releases exactly what it charged.
    fn refresh_ledger(&self) {
        let now = self.entries().approx_bytes();
        let before = self.inner.ledger_bytes.swap(now, Ordering::Relaxed);
        if now >= before {
            self.inner.ledger.add(now - before);
        } else {
            self.inner.ledger.sub(before - now);
        }
    }

    fn entries(&self) -> std::sync::MutexGuard<'_, TuneCache> {
        self.inner
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The fingerprint this cache's measurements are valid for.
    pub fn fingerprint(&self) -> &DeviceFingerprint {
        &self.inner.fingerprint
    }

    /// The persistence path, when configured.
    pub fn path(&self) -> Option<&Path> {
        self.inner.path.as_deref()
    }

    /// Look up a signature, counting a hit or miss (both on this cache's own
    /// stats and on the process-wide `mnn_tune_cache_{hits,misses}_total`
    /// metrics).
    pub fn lookup(&self, signature: &OpSignature) -> Option<TuneEntry> {
        let found = self.entries().get(signature).cloned();
        if found.is_some() {
            self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
            mnn_obs::global()
                .counter(
                    mnn_obs::metrics::names::TUNE_CACHE_HITS,
                    "Tuning-cache lookups answered from the cache.",
                )
                .inc();
        } else {
            self.inner.cache_misses.fetch_add(1, Ordering::Relaxed);
            mnn_obs::global()
                .counter(
                    mnn_obs::metrics::names::TUNE_CACHE_MISSES,
                    "Tuning-cache lookups that found no entry.",
                )
                .inc();
        }
        found
    }

    /// Insert a measured entry (marks the cache dirty for persistence).
    pub fn insert(&self, signature: &OpSignature, entry: TuneEntry) {
        self.entries().insert(signature, entry);
        self.inner.dirty.store(true, Ordering::Relaxed);
        self.refresh_ledger();
    }

    /// Number of tuned signatures currently held.
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// Whether no signatures are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TuningStats {
        TuningStats {
            tuned_nodes: self.inner.tuned_nodes.load(Ordering::Relaxed),
            measured_candidates: self.inner.measured_candidates.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.inner.cache_misses.load(Ordering::Relaxed),
            loaded_from_disk: self.inner.loaded_from_disk,
        }
    }

    /// Persist to the configured path if new measurements were taken since the
    /// last save. Returns `Ok(true)` when a file was written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; the dirty flag stays set so a later call
    /// retries.
    pub fn persist(&self) -> io::Result<bool> {
        let Some(path) = &self.inner.path else {
            return Ok(false);
        };
        // Claim the dirty flag BEFORE snapshotting: an insert racing with the
        // file write either lands in the snapshot or re-sets the flag, so a
        // concurrent measurement can delay persistence but never lose it.
        if !self.inner.dirty.swap(false, Ordering::AcqRel) {
            return Ok(false);
        }
        let snapshot = self.entries().clone();
        if let Err(e) = save_cache_file(path, &self.inner.fingerprint, &snapshot) {
            self.inner.dirty.store(true, Ordering::Release);
            return Err(e);
        }
        Ok(true)
    }
}

impl std::fmt::Debug for SharedTuneCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedTuneCache")
            .field("fingerprint", &self.inner.fingerprint.key())
            .field("path", &self.inner.path)
            .field("entries", &self.len())
            .finish()
    }
}

fn registry() -> &'static Mutex<HashMap<String, SharedTuneCache>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SharedTuneCache>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The process-wide shared cache for (fingerprint, path): every caller with the
/// same key gets the *same* handle, so sessions created by a pool or server
/// share one tuning pass. The backing file (if any) is loaded once, on first
/// open. Relative paths are resolved against the current directory before
/// keying, so two spellings of the same file share one cache.
pub fn shared_cache(fingerprint: DeviceFingerprint, path: Option<PathBuf>) -> SharedTuneCache {
    let path = path.map(|p| std::path::absolute(&p).unwrap_or(p));
    let key = format!(
        "{}\u{1}{}",
        fingerprint.key(),
        path.as_deref()
            .map(Path::to_string_lossy)
            .unwrap_or_default()
    );
    let mut registry = registry().lock().unwrap_or_else(PoisonError::into_inner);
    registry
        .entry(key)
        .or_insert_with(|| SharedTuneCache::open(fingerprint, path))
        .clone()
}

/// Drop every process-global shared cache handle, so the next [`shared_cache`]
/// call re-opens (and re-loads any persisted file) from scratch.
///
/// Existing handles keep working on their own storage; only the registry is
/// cleared. Intended for tests that simulate a fresh process against a warm
/// persistent cache.
pub fn clear_process_caches() {
    registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// The default persistence path from the `MNN_TUNE_CACHE` environment
/// variable, used when the session configuration does not set one.
pub fn default_cache_path() -> Option<PathBuf> {
    std::env::var_os("MNN_TUNE_CACHE").map(PathBuf::from)
}

/// Measured scheme selection over a [`SharedTuneCache`].
#[derive(Clone)]
pub struct Tuner {
    cache: SharedTuneCache,
    timer: Arc<dyn CandidateTimer>,
}

impl Tuner {
    /// A tuner over `cache` using the production wall-clock timer.
    pub fn new(cache: SharedTuneCache) -> Self {
        Tuner::with_timer(cache, Arc::new(WallTimer::default()))
    }

    /// A tuner with an injected timer (deterministic tests).
    pub fn with_timer(cache: SharedTuneCache, timer: Arc<dyn CandidateTimer>) -> Self {
        Tuner { cache, timer }
    }

    /// The shared cache this tuner reads and writes.
    pub fn cache(&self) -> &SharedTuneCache {
        &self.cache
    }

    /// Counter snapshot of the shared cache.
    pub fn stats(&self) -> TuningStats {
        self.cache.stats()
    }

    /// Cache lookup (counts hit/miss).
    pub fn lookup(&self, signature: &OpSignature) -> Option<TuneEntry> {
        self.cache.lookup(signature)
    }

    /// Persist the shared cache if dirty (see [`SharedTuneCache::persist`]).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn persist(&self) -> io::Result<bool> {
        self.cache.persist()
    }

    /// Measure every candidate scheme for `node` on its real geometry and
    /// record the winner in the shared cache.
    ///
    /// Candidates are prepared through `backend.on_create` (so constant-weight
    /// captures and Winograd transforms happen outside the timed region, as in
    /// a real session), validated with one untimed run, then timed by the
    /// injected [`CandidateTimer`]. Candidates that fail to prepare or
    /// validate are skipped. Returns the entry plus the winning candidate's
    /// prepared execution, which the caller may install directly into its plan
    /// instead of re-creating it.
    ///
    /// # Errors
    ///
    /// * [`TuneError::MissingShape`] when the node's input shape is unknown.
    /// * [`TuneError::NoCandidates`] when the candidate list is empty or every
    ///   candidate failed to prepare.
    pub fn measure_node(
        &self,
        backend: &dyn Backend,
        node: &Node,
        graph: &Graph,
        signature: &OpSignature,
        candidates: &[ConvScheme],
        threads: usize,
    ) -> Result<(TuneEntry, Box<dyn Execution>), TuneError> {
        let input_shape = node
            .inputs
            .first()
            .and_then(|id| graph.tensor_info(*id).ok())
            .and_then(|info| info.shape.clone())
            .ok_or_else(|| TuneError::MissingShape(node.name.clone()))?;
        let input = deterministic_input(input_shape);

        let mut measurements = Vec::with_capacity(candidates.len());
        let mut best: Option<(f64, ConvScheme, Box<dyn Execution>)> = None;
        for &scheme in candidates {
            let hint = SchemeHint {
                conv_scheme: Some(scheme),
                threads: Some(threads),
            };
            let Ok(mut execution) = backend.on_create(node, graph, &hint) else {
                continue;
            };
            // Validation run: an inapplicable candidate fails here, outside
            // the timed region.
            let mut output = Tensor::zeros(Shape::vector(1));
            if execution.run(&[&input], &mut output).is_err() {
                continue;
            }
            let ms = self.timer.time_candidate(signature, scheme, &mut || {
                let _ = execution.run(&[&input], &mut output);
            });
            self.cache
                .inner
                .measured_candidates
                .fetch_add(1, Ordering::Relaxed);
            mnn_obs::global()
                .counter(
                    mnn_obs::metrics::names::TUNE_MEASURED,
                    "Candidate kernels micro-benchmarked by the tuner.",
                )
                .inc();
            measurements.push(CandidateMeasurement {
                scheme: scheme.to_string(),
                measured_ms: ms,
            });
            if best.as_ref().map(|(b, _, _)| ms < *b).unwrap_or(true) {
                best = Some((ms, scheme, execution));
            }
        }
        let (measured_ms, scheme, execution) =
            best.ok_or_else(|| TuneError::NoCandidates(node.name.clone()))?;
        let entry = TuneEntry {
            scheme: scheme.to_string(),
            measured_ms,
            candidates: measurements,
        };
        self.cache.insert(signature, entry.clone());
        self.cache.inner.tuned_nodes.fetch_add(1, Ordering::Relaxed);
        Ok((entry, execution))
    }
}

impl std::fmt::Debug for Tuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tuner").field("cache", &self.cache).finish()
    }
}

/// Deterministic pseudo-random activation data (fixed LCG seed) so
/// measurements do not depend on uninitialized or all-zero inputs, and repeat
/// runs see identical data.
fn deterministic_input(shape: Shape) -> Tensor {
    let len = shape.num_elements();
    let mut state = 0x2545F491_4F6CDD1Du64;
    let data = (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect();
    Tensor::from_vec(shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timer::FakeTimer;
    use mnn_backend::CpuBackend;
    use mnn_graph::{Conv2dAttrs, GraphBuilder};

    fn conv_graph() -> Graph {
        let mut b = GraphBuilder::new("tuner");
        let x = b.input("x", Shape::nchw(1, 3, 12, 12));
        let y = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 8), true);
        let mut g = b.build(vec![y]);
        g.infer_shapes().unwrap();
        g
    }

    fn fingerprint() -> DeviceFingerprint {
        DeviceFingerprint::detect(1, &CpuBackend::new(1).descriptor())
    }

    fn candidates() -> Vec<ConvScheme> {
        ConvScheme::float_conv_pool(&Conv2dAttrs::same_3x3(3, 8).to_conv_params(), 4)
    }

    #[test]
    fn fake_timer_yields_a_deterministic_stable_plan() {
        let g = conv_graph();
        let backend = CpuBackend::new(1);
        let sig = OpSignature::for_node(&g.nodes()[0], &g).unwrap();
        let timer = Arc::new(FakeTimer::preferring(&["winograd-F(2x2)", "im2col"]));
        let mut entries = Vec::new();
        for _ in 0..3 {
            let cache = SharedTuneCache::open(fingerprint(), None);
            let tuner = Tuner::with_timer(cache, timer.clone());
            let (entry, _) = tuner
                .measure_node(&backend, &g.nodes()[0], &g, &sig, &candidates(), 1)
                .unwrap();
            entries.push(entry);
        }
        assert_eq!(entries[0].scheme, "winograd-F(2x2)");
        assert_eq!(entries[0], entries[1]);
        assert_eq!(entries[1], entries[2]);
    }

    #[test]
    fn measurements_populate_the_cache_and_counters() {
        let g = conv_graph();
        let backend = CpuBackend::new(1);
        let sig = OpSignature::for_node(&g.nodes()[0], &g).unwrap();
        let cache = SharedTuneCache::open(fingerprint(), None);
        let tuner = Tuner::with_timer(cache.clone(), Arc::new(FakeTimer::preferring(&["im2col"])));
        assert!(tuner.lookup(&sig).is_none());
        let pool = candidates();
        tuner
            .measure_node(&backend, &g.nodes()[0], &g, &sig, &pool, 1)
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.tuned_nodes, 1);
        assert_eq!(stats.measured_candidates, pool.len() as u64);
        assert_eq!(stats.cache_misses, 1);
        // Second lookup is a hit and needs no measurement.
        let entry = tuner.lookup(&sig).unwrap();
        assert_eq!(entry.scheme, "im2col");
        assert_eq!(cache.stats().cache_hits, 1);
    }

    #[test]
    fn wall_timer_measurement_picks_a_real_candidate() {
        let g = conv_graph();
        let backend = CpuBackend::new(1);
        let sig = OpSignature::for_node(&g.nodes()[0], &g).unwrap();
        let tuner = Tuner::new(SharedTuneCache::open(fingerprint(), None));
        let pool = candidates();
        let (entry, execution) = tuner
            .measure_node(&backend, &g.nodes()[0], &g, &sig, &pool, 1)
            .unwrap();
        assert!(entry.measured_ms.is_finite() && entry.measured_ms >= 0.0);
        assert!(ConvScheme::parse(&entry.scheme).is_some());
        assert_eq!(entry.candidates.len(), pool.len());
        // The returned execution is the prepared winner, ready to run.
        assert!(execution.describe().contains("conv"));
    }

    #[test]
    fn shared_cache_registry_deduplicates_by_fingerprint_and_path() {
        clear_process_caches();
        let a = shared_cache(fingerprint(), None);
        let b = shared_cache(fingerprint(), None);
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
        let other = std::env::temp_dir().join(format!(
            "mnn-tune-registry-test-{}.json",
            std::process::id()
        ));
        let c = shared_cache(fingerprint(), Some(other.clone()));
        assert!(!Arc::ptr_eq(&a.inner, &c.inner));
        clear_process_caches();
        let d = shared_cache(fingerprint(), None);
        assert!(!Arc::ptr_eq(&a.inner, &d.inner));
        let _ = std::fs::remove_file(other);
    }

    #[test]
    fn persist_round_trips_through_the_registry() {
        let path =
            std::env::temp_dir().join(format!("mnn-tune-persist-test-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cache = SharedTuneCache::open(fingerprint(), Some(path.clone()));
        assert!(!cache.persist().unwrap(), "clean cache must not write");
        cache.insert(
            &OpSignature::from_key("conv:x"),
            TuneEntry {
                scheme: "im2col".into(),
                measured_ms: 0.5,
                candidates: vec![],
            },
        );
        assert!(cache.persist().unwrap());
        assert!(!cache.persist().unwrap(), "second persist is a no-op");
        // A fresh open warm-starts from the file.
        let warm = SharedTuneCache::open(fingerprint(), Some(path.clone()));
        assert!(warm.stats().loaded_from_disk);
        assert!(warm.lookup(&OpSignature::from_key("conv:x")).is_some());
        let _ = std::fs::remove_file(&path);
    }
}
