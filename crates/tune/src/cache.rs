//! The tuning cache and its versioned on-disk format.
//!
//! Entries map a canonical [`OpSignature`] to the measured winner (plus every
//! candidate's timing, for reporting). The persisted form is a JSON document
//! carrying a format version and the [`DeviceFingerprint`] the measurements
//! were taken under; loading is deliberately forgiving — a missing, corrupt,
//! stale-versioned or foreign-device file is *ignored* (the engine re-tunes),
//! never an error that could take a serving process down.

use crate::fingerprint::DeviceFingerprint;
use crate::signature::OpSignature;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::path::Path;

/// Version of the persisted tuning-cache format. Bump on any incompatible
/// change; readers ignore files written by other versions.
///
/// History: v1 had no `kernel_set` in the fingerprint; v2 adds it so a cache
/// tuned with SIMD kernels can never be installed by a scalar-only process
/// (and vice versa).
pub const TUNE_CACHE_VERSION: u32 = 2;

/// One candidate's measured latency (scheme stored as its canonical
/// `ConvScheme` display string).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateMeasurement {
    /// Scheme key (e.g. `"winograd-F(4x4)"`).
    pub scheme: String,
    /// Best observed wall-clock milliseconds.
    pub measured_ms: f64,
}

/// The measured outcome for one operator signature: the winning scheme and the
/// full candidate table it was picked from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneEntry {
    /// Winning scheme key (fastest measured candidate).
    pub scheme: String,
    /// The winner's best observed milliseconds.
    pub measured_ms: f64,
    /// Every measured candidate, in enumeration order.
    pub candidates: Vec<CandidateMeasurement>,
}

/// In-memory tuning cache: operator signature → measured winner.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TuneCache {
    /// The entries, keyed by [`OpSignature::as_str`].
    pub entries: HashMap<String, TuneEntry>,
}

impl TuneCache {
    /// Look up the entry for `signature`.
    pub fn get(&self, signature: &OpSignature) -> Option<&TuneEntry> {
        self.entries.get(signature.as_str())
    }

    /// Insert (or replace) the entry for `signature`.
    pub fn insert(&mut self, signature: &OpSignature, entry: TuneEntry) {
        self.entries.insert(signature.as_str().to_string(), entry);
    }

    /// Number of tuned signatures.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate resident bytes of the in-memory cache: key and scheme
    /// strings plus per-entry/per-candidate struct overhead. Used by the
    /// `mnn_obs::resources` ledger (`scope="tune", component="tune_cache"`);
    /// an estimate is fine there — the cache is re-measured after every
    /// insert, not tracked by deltas.
    pub fn approx_bytes(&self) -> u64 {
        let mut bytes = std::mem::size_of::<Self>() as u64;
        for (key, entry) in &self.entries {
            bytes += (key.len() + std::mem::size_of::<TuneEntry>() + entry.scheme.len()) as u64;
            for candidate in &entry.candidates {
                bytes +=
                    (std::mem::size_of::<CandidateMeasurement>() + candidate.scheme.len()) as u64;
            }
        }
        bytes
    }
}

/// The on-disk document: version + fingerprint + entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TuneCacheFile {
    version: u32,
    fingerprint: DeviceFingerprint,
    cache: TuneCache,
}

/// Why a persisted cache file was (or was not) usable.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheLoad {
    /// The file matched: its entries are usable as-is.
    Loaded(TuneCache),
    /// No file exists at the path (first run): start empty.
    Missing,
    /// The file was written by a different format version: start empty.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
    },
    /// The file was measured on a different device/configuration: start empty
    /// and re-tune.
    FingerprintMismatch {
        /// Fingerprint found in the file.
        found: Box<DeviceFingerprint>,
    },
    /// The file exists but could not be parsed: start empty.
    Corrupt(String),
}

impl CacheLoad {
    /// The usable cache: the loaded entries, or an empty cache for every
    /// non-`Loaded` outcome.
    pub fn into_cache(self) -> TuneCache {
        match self {
            CacheLoad::Loaded(cache) => cache,
            _ => TuneCache::default(),
        }
    }

    /// Whether entries were actually loaded.
    pub fn is_loaded(&self) -> bool {
        matches!(self, CacheLoad::Loaded(_))
    }
}

/// Read a persisted tuning cache, validating format version and device
/// fingerprint. Never panics and never returns an error: any unusable file
/// degrades to an empty cache with a diagnostic [`CacheLoad`] variant.
pub fn load_cache_file(path: &Path, expected: &DeviceFingerprint) -> CacheLoad {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return CacheLoad::Missing,
        Err(e) => return CacheLoad::Corrupt(format!("unreadable: {e}")),
    };
    let file: TuneCacheFile = match serde_json::from_str(&text) {
        Ok(file) => file,
        Err(e) => return CacheLoad::Corrupt(e.to_string()),
    };
    if file.version != TUNE_CACHE_VERSION {
        return CacheLoad::VersionMismatch {
            found: file.version,
        };
    }
    if &file.fingerprint != expected {
        return CacheLoad::FingerprintMismatch {
            found: Box::new(file.fingerprint),
        };
    }
    CacheLoad::Loaded(file.cache)
}

/// Atomically persist `cache` (write to a sibling temp file, then rename), so a
/// crash mid-write can corrupt at worst the temp file, never the cache itself.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable directory, disk full, …).
pub fn save_cache_file(
    path: &Path,
    fingerprint: &DeviceFingerprint,
    cache: &TuneCache,
) -> io::Result<()> {
    let file = TuneCacheFile {
        version: TUNE_CACHE_VERSION,
        fingerprint: fingerprint.clone(),
        cache: cache.clone(),
    };
    let text = serde_json::to_string(&file)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_backend::{Backend, CpuBackend};
    use std::path::PathBuf;

    fn fingerprint(threads: usize) -> DeviceFingerprint {
        DeviceFingerprint::detect(threads, &CpuBackend::new(threads).descriptor())
    }

    fn sample_cache() -> TuneCache {
        let mut cache = TuneCache::default();
        cache.insert(
            &OpSignature::from_key("conv:demo"),
            TuneEntry {
                scheme: "winograd-F(4x4)".to_string(),
                measured_ms: 0.25,
                candidates: vec![
                    CandidateMeasurement {
                        scheme: "sliding-window".to_string(),
                        measured_ms: 1.0,
                    },
                    CandidateMeasurement {
                        scheme: "winograd-F(4x4)".to_string(),
                        measured_ms: 0.25,
                    },
                ],
            },
        );
        cache
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "mnn-tune-cache-test-{}-{tag}.json",
            std::process::id()
        ))
    }

    #[test]
    fn cache_file_round_trips() {
        let path = temp_path("roundtrip");
        let fp = fingerprint(2);
        let cache = sample_cache();
        save_cache_file(&path, &fp, &cache).unwrap();
        let loaded = load_cache_file(&path, &fp);
        assert!(loaded.is_loaded());
        assert_eq!(loaded.into_cache(), cache);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_reported_not_fatal() {
        let path = temp_path("missing-never-created");
        assert_eq!(load_cache_file(&path, &fingerprint(1)), CacheLoad::Missing);
    }

    #[test]
    fn version_bump_invalidates_the_file() {
        let path = temp_path("version");
        let fp = fingerprint(2);
        // A well-formed file written by a (hypothetical) future format version.
        let future = TUNE_CACHE_VERSION + 1;
        let text = format!(
            concat!(
                r#"{{"version": {future}, "#,
                r#""fingerprint": {{"arch": "{arch}", "cpu_features": "{feat}", "#,
                r#""threads": {threads}, "backend": "{backend}", "#,
                r#""kernel_set": "{kernel_set}"}}, "#,
                r#""cache": {{"entries": {{}}}}}}"#
            ),
            future = future,
            arch = fp.arch,
            feat = fp.cpu_features,
            threads = fp.threads,
            backend = fp.backend,
            kernel_set = fp.kernel_set,
        );
        std::fs::write(&path, text).unwrap();
        match load_cache_file(&path, &fp) {
            CacheLoad::VersionMismatch { found } => assert_eq!(found, future),
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v1_files_without_kernel_set_degrade_to_a_retune() {
        // A real v1 file: no kernel_set in the fingerprint, version 1. The
        // missing field makes the fingerprint unparseable, so the file is
        // reported corrupt and ignored — never loaded, never a panic.
        let path = temp_path("v1-legacy");
        let fp = fingerprint(2);
        let text = format!(
            concat!(
                r#"{{"version": 1, "#,
                r#""fingerprint": {{"arch": "{arch}", "cpu_features": "{feat}", "#,
                r#""threads": {threads}, "backend": "{backend}"}}, "#,
                r#""cache": {{"entries": {{}}}}}}"#
            ),
            arch = fp.arch,
            feat = fp.cpu_features,
            threads = fp.threads,
            backend = fp.backend,
        );
        std::fs::write(&path, text).unwrap();
        match load_cache_file(&path, &fp) {
            CacheLoad::Corrupt(_) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(load_cache_file(&path, &fp).into_cache().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_kernel_set_forces_a_retune() {
        // A cache tuned on a SIMD host (entries naming SIMD schemes) loaded by
        // a process with a different kernel set: the fingerprint mismatch must
        // degrade it to an empty cache so the SIMD winners are never installed.
        let path = temp_path("kernel-set");
        let mut simd_host = fingerprint(2);
        simd_host.kernel_set = "avx2fma".to_string();
        let mut cache = TuneCache::default();
        cache.insert(
            &OpSignature::from_key("conv:simd-tuned"),
            TuneEntry {
                scheme: "im2col-simd".to_string(),
                measured_ms: 0.1,
                candidates: vec![CandidateMeasurement {
                    scheme: "im2col-simd".to_string(),
                    measured_ms: 0.1,
                }],
            },
        );
        save_cache_file(&path, &simd_host, &cache).unwrap();

        let mut scalar_host = simd_host.clone();
        scalar_host.kernel_set = "scalar".to_string();
        match load_cache_file(&path, &scalar_host) {
            CacheLoad::FingerprintMismatch { found } => {
                assert_eq!(found.kernel_set, "avx2fma");
            }
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
        assert!(load_cache_file(&path, &scalar_host).into_cache().is_empty());
        // The matching host still loads its own cache.
        assert!(load_cache_file(&path, &simd_host).is_loaded());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_file_is_ignored_not_a_panic() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{ this is not json").unwrap();
        match load_cache_file(&path, &fingerprint(1)) {
            CacheLoad::Corrupt(_) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        assert!(load_cache_file(&path, &fingerprint(1))
            .into_cache()
            .is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_fingerprint_forces_a_retune() {
        let path = temp_path("fingerprint");
        save_cache_file(&path, &fingerprint(2), &sample_cache()).unwrap();
        match load_cache_file(&path, &fingerprint(4)) {
            CacheLoad::FingerprintMismatch { found } => assert_eq!(found.threads, 2),
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }
}
