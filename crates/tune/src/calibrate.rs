//! Calibration of the analytic cost model from real measurements.
//!
//! The cost model's constants (most prominently the int8-vs-float discount
//! `INT8_COST_FACTOR` in `mnn-core`) were originally guessed. This harness
//! derives them from the same micro-benchmarks the tuner runs, so even
//! *untuned* sessions (`TuningMode::Off`) benefit from measurements: run it
//! once per device class, feed the result into
//! `SessionConfig::builder().cost_model(...)`, or use it to justify the
//! shipped default.
//!
//! Run interactively via `cargo run --release -p mnn-bench --bin table_tuning
//! -- --calibrate`.

use mnn_backend::timing::time_runs;
use mnn_kernels::conv::ConvParams;
use mnn_kernels::quant::{per_channel_scales, quantize_per_channel};
use mnn_kernels::{conv, quant};

/// One calibration geometry's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSample {
    /// Human-readable geometry description (`k/ic/oc/size`).
    pub description: String,
    /// Float direct-convolution milliseconds (the cost model's float
    /// reference: its cost is the raw multiplication count).
    pub float_ms: f64,
    /// Int8 integer-kernel milliseconds (includes the per-run activation
    /// quantization pass, as at inference time).
    pub int8_ms: f64,
    /// The implied per-multiplication int8 discount for this geometry.
    pub factor: f64,
}

/// Result of calibrating the int8 cost factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Int8Calibration {
    /// Median per-multiplication discount across the sample geometries —
    /// the measured replacement for the cost model's `INT8_COST_FACTOR`.
    pub factor: f64,
    /// The individual geometry measurements.
    pub samples: Vec<CalibrationSample>,
}

/// Representative convolution geometries: a GEMM-heavy 3×3, a pointwise layer
/// and a wider late-network 3×3 (mirrors the mix the zoo models run).
const GEOMETRIES: [(usize, usize, usize, usize); 3] =
    [(3, 32, 64, 28), (1, 64, 128, 14), (3, 64, 64, 28)];

/// Measure the relative cost of one int8 multiply-accumulate against one f32
/// multiply, in the units of the scheme cost model.
///
/// For each geometry the float direct kernel and the int8 kernel are timed on
/// identical deterministic data with `threads` workers; the model equation
/// `cost_int8 = muls · factor + quantize_pass` is then solved for `factor`
/// (clamped to a sane range) and the median across geometries is returned.
pub fn calibrate_int8_cost_factor(threads: usize) -> Int8Calibration {
    let mut samples = Vec::new();
    for (k, ic, oc, size) in GEOMETRIES {
        let params = ConvParams::square(ic, oc, k, k / 2);
        let muls = params.mul_count(size, size) as f64;
        let quantize_pass = (ic * size * size) as f64;

        let input = deterministic(ic * size * size, 7);
        let weight = deterministic(params.weight_len(), 11);
        let scales = per_channel_scales(&weight, oc);
        let weight_q = quantize_per_channel(&weight, &scales);
        let bias = vec![0.0f32; oc];

        let float_ms = time_runs(1, 3, || {
            std::hint::black_box(conv::conv2d_sliding_window(
                &params, threads, 1, size, size, &input, &weight, &bias,
            ));
        });
        let int8_ms = time_runs(1, 3, || {
            std::hint::black_box(quant::conv2d_quantized(
                &params, threads, 1, size, size, &input, &weight_q, &scales, &bias,
            ));
        });

        // t_int8 / t_float ≈ (muls·factor + quantize_pass) / muls
        let factor = ((int8_ms / float_ms.max(1e-9)) * muls - quantize_pass) / muls;
        samples.push(CalibrationSample {
            description: format!("k{k} {ic}->{oc} @{size}px"),
            float_ms,
            int8_ms,
            factor: factor.clamp(0.05, 1.5),
        });
    }
    let mut factors: Vec<f64> = samples.iter().map(|s| s.factor).collect();
    factors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Int8Calibration {
        factor: factors[factors.len() / 2],
        samples,
    }
}

fn deterministic(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_a_sane_factor() {
        let calibration = calibrate_int8_cost_factor(1);
        assert_eq!(calibration.samples.len(), GEOMETRIES.len());
        assert!(calibration.factor >= 0.05 && calibration.factor <= 1.5);
        for sample in &calibration.samples {
            assert!(sample.float_ms > 0.0);
            assert!(sample.int8_ms > 0.0);
        }
    }
}
