//! Figure 7 — cross-engine comparison on MobileNet-v1, SqueezeNet-v1.1, ResNet-18.
//!
//! Reproduces the paper's main benchmark figure: five engines on four phones, CPU
//! with 2 and 4 threads plus every GPU standard each engine supports. Values come
//! from the analytic simulator calibrated against the paper's MNN measurements; "-"
//! means the engine does not support that backend on that device (the bar is absent
//! in the paper's figure, too).
//!
//! Run with: `cargo run --release -p mnn-bench --bin fig7_engine_comparison`

use mnn_bench::{ms, print_row, print_table_header};
use mnn_device_sim::{
    estimate_cpu_latency_ms, estimate_gpu_latency_ms, DeviceProfile, Engine, GpuStandard,
};
use mnn_graph::Graph;
use mnn_models::{build, ModelKind};

const DEVICES: [&str; 4] = ["iPhoneX", "iPhone8", "Mate20", "MI6"];
const MODELS: [ModelKind; 3] = [
    ModelKind::MobileNetV1,
    ModelKind::SqueezeNetV1_1,
    ModelKind::ResNet18,
];

fn cell(value: Option<f64>) -> String {
    value.map(ms).unwrap_or_else(|| "-".to_string())
}

fn cpu_section(graph: &Graph, threads: usize) {
    print_table_header(
        &format!("CPU, {threads} threads (ms)"),
        &["device", "NCNN", "MACE", "TF-Lite", "CoreML", "TVM", "MNN"],
    );
    for device_name in DEVICES {
        let device = DeviceProfile::by_name(device_name).unwrap();
        let mut cells = vec![device_name.to_string()];
        for engine in Engine::ALL {
            let spec = engine.spec();
            #[allow(clippy::nonminimal_bool)] // readability: two named platform exclusions
            let supported = !(spec.ios_only && !device.gpu.is_metal)
                && !(spec.android_only && device.gpu.is_metal);
            let value = supported.then(|| estimate_cpu_latency_ms(graph, &device, engine, threads));
            cells.push(cell(value));
        }
        print_row(&cells);
    }
}

fn gpu_section(graph: &Graph) {
    print_table_header(
        "GPU (ms) — engine/standard pairs as in the paper's row 3",
        &[
            "device",
            "NCNN(Vulkan)",
            "MACE(OpenCL)",
            "TF-Lite(Metal/OpenGL)",
            "CoreML(Metal)",
            "MNN(Metal)",
            "MNN(OpenCL)",
            "MNN(OpenGL)",
            "MNN(Vulkan)",
        ],
    );
    for device_name in DEVICES {
        let device = DeviceProfile::by_name(device_name).unwrap();
        let tflite_standard = if device.gpu.is_metal {
            GpuStandard::Metal
        } else {
            GpuStandard::OpenGl
        };
        let cells = vec![
            device_name.to_string(),
            cell(estimate_gpu_latency_ms(
                graph,
                &device,
                Engine::Ncnn,
                GpuStandard::Vulkan,
            )),
            cell(estimate_gpu_latency_ms(
                graph,
                &device,
                Engine::Mace,
                GpuStandard::OpenCl,
            )),
            cell(estimate_gpu_latency_ms(
                graph,
                &device,
                Engine::TfLite,
                tflite_standard,
            )),
            cell(estimate_gpu_latency_ms(
                graph,
                &device,
                Engine::CoreMl,
                GpuStandard::Metal,
            )),
            cell(estimate_gpu_latency_ms(
                graph,
                &device,
                Engine::Mnn,
                GpuStandard::Metal,
            )),
            cell(estimate_gpu_latency_ms(
                graph,
                &device,
                Engine::Mnn,
                GpuStandard::OpenCl,
            )),
            cell(estimate_gpu_latency_ms(
                graph,
                &device,
                Engine::Mnn,
                GpuStandard::OpenGl,
            )),
            cell(estimate_gpu_latency_ms(
                graph,
                &device,
                Engine::Mnn,
                GpuStandard::Vulkan,
            )),
        ];
        print_row(&cells);
    }
}

fn main() {
    for model in MODELS {
        println!("\n################ {model} ################");
        let mut graph = build(model, 1, 224);
        graph.infer_shapes().expect("shape inference");
        cpu_section(&graph, 2);
        cpu_section(&graph, 4);
        gpu_section(&graph);
    }
    println!(
        "\nShape to check (paper Fig. 7): MNN is fastest or tied on nearly every \
         device/backend/network combination, typically by 20-40% over NCNN/MACE/TF-Lite; \
         CoreML is slightly ahead of MNN on iPhone Metal; other engines have missing bars \
         (unsupported standards) while MNN covers them all."
    );
}
