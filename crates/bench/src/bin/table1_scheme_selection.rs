//! Table 1 — inference time of different convolution computation schemes.
//!
//! Reproduces the paper's Table 1: for each convolution setting `(k, ic, oc, size)`
//! the sliding-window kernel, Winograd with the minimal and maximal block size, and
//! the scheme picked by MNN's cost model ("Ours") are measured on the real Rust
//! kernels of `mnn-kernels`.
//!
//! Run with: `cargo run --release -p mnn-bench --bin table1_scheme_selection`

use mnn_backend::ConvScheme;
use mnn_bench::{
    deterministic_buffer, ms, print_row, print_table_header, table1_conv, time_avg_ms,
    TABLE1_SETTINGS,
};
use mnn_core::scheme::{select_conv_scheme, MAX_WINOGRAD_TILE};
use mnn_kernels::conv::{conv2d_sliding_window, ConvParams};
use mnn_kernels::winograd::conv2d_winograd;

fn run_scheme(
    params: &ConvParams,
    scheme: ConvScheme,
    size: usize,
    input: &[f32],
    weight: &[f32],
    threads: usize,
    runs: usize,
) -> f64 {
    time_avg_ms(runs, || match scheme {
        ConvScheme::SlidingWindow => {
            conv2d_sliding_window(params, threads, 1, size, size, input, weight, &[])
        }
        ConvScheme::Winograd { tile } => {
            conv2d_winograd(params, tile, threads, 1, size, size, input, weight, &[])
        }
        other => panic!("unexpected scheme {other}"),
    })
}

fn main() {
    let threads = 4;
    let runs = 3;
    print_table_header(
        "Table 1: convolution scheme comparison (ms, lower is better)",
        &[
            "setting (k, ic, oc, size)",
            "Sliding",
            "WinoMin",
            "WinoMax",
            "Ours",
            "selected scheme",
        ],
    );

    for setting in TABLE1_SETTINGS {
        let (k, ic, oc, size) = setting;
        let params = table1_conv(setting);
        let input = deterministic_buffer(ic * size * size, 1);
        let weight = deterministic_buffer(params.weight_len(), 2);

        let sliding = run_scheme(
            &params,
            ConvScheme::SlidingWindow,
            size,
            &input,
            &weight,
            threads,
            runs,
        );
        let wino_min = run_scheme(
            &params,
            ConvScheme::Winograd { tile: 2 },
            size,
            &input,
            &weight,
            threads,
            runs,
        );
        let wino_max = run_scheme(
            &params,
            ConvScheme::Winograd {
                tile: MAX_WINOGRAD_TILE,
            },
            size,
            &input,
            &weight,
            threads,
            runs,
        );

        let decision = select_conv_scheme(&params, size, size, MAX_WINOGRAD_TILE);
        let ours = match decision.selected {
            ConvScheme::SlidingWindow | ConvScheme::Winograd { .. } => run_scheme(
                &params,
                decision.selected,
                size,
                &input,
                &weight,
                threads,
                runs,
            ),
            // 1x1 settings never appear in Table 1, but handle them gracefully.
            _ => sliding,
        };

        print_row(&[
            format!("({k}, {ic}, {oc}, {size})"),
            ms(sliding),
            ms(wino_min),
            ms(wino_max),
            ms(ours),
            decision.selected.to_string(),
        ]);
    }
    println!(
        "\nPaper reference (ms): (2,3,16,224): 32.1 / 42.2 / 57.3 / 32.7; \
         (2,512,512,16): 895.1 / 287.7 / 539.3 / 286.0; (3,64,64,112): 895.1 / 389.8 / 237.4 / 236.4"
    );
}
