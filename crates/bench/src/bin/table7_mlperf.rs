//! Table 7 — MLPerf-style latency statistics.
//!
//! The paper runs the MLPerf load generator over MobileNet-v2 on a Pixel 3 (4 CPU
//! threads, ≥1024 queries) and reports QPS plus latency percentiles. This harness
//! reproduces the same statistics on the real Rust engine; the input resolution and
//! query count are configurable because the pure-Rust kernels on a development
//! machine are slower than NEON kernels on a phone.
//!
//! Run with: `cargo run --release -p mnn-bench --bin table7_mlperf [-- <queries> <input_size>]`

use mnn_bench::{deterministic_input, print_row, print_table_header};
use mnn_core::{Interpreter, SessionConfig};
use mnn_models::{build, ModelKind};
use mnn_tensor::Shape;
use std::time::Instant;

fn percentile(sorted_ns: &[u128], p: f64) -> u128 {
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let queries: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(128);
    let input_size: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(96);

    let graph = build(ModelKind::MobileNetV2, 1, input_size);
    let interpreter = Interpreter::from_graph(graph).expect("valid model");
    let mut session = interpreter
        .create_session(SessionConfig::cpu(4))
        .expect("session");
    let input = deterministic_input(Shape::nchw(1, 3, input_size, input_size), 9);

    // Warm-up (the paper performs one warm-up inference before measuring).
    session.run(std::slice::from_ref(&input)).expect("warm-up");

    let mut latencies_ns: Vec<u128> = Vec::with_capacity(queries);
    let wall_start = Instant::now();
    for _ in 0..queries {
        let start = Instant::now();
        session
            .run(std::slice::from_ref(&input))
            .expect("inference");
        latencies_ns.push(start.elapsed().as_nanos());
    }
    let wall_s = wall_start.elapsed().as_secs_f64();
    latencies_ns.sort_unstable();

    let sum_ns: u128 = latencies_ns.iter().sum();
    let mean_ns = sum_ns / queries as u128;
    let qps_with_overhead = queries as f64 / wall_s;
    let qps_without_overhead = 1e9 * queries as f64 / sum_ns as f64;

    print_table_header(
        &format!("Table 7: MLPerf-style results (MobileNet-v2, {input_size}x{input_size}, 4 CPU threads)"),
        &["item of evaluation", "value"],
    );
    let rows: Vec<(String, String)> = vec![
        ("query count".into(), queries.to_string()),
        (
            "QPS w/ loadgen overhead".into(),
            format!("{qps_with_overhead:.2}"),
        ),
        (
            "QPS w/o loadgen overhead".into(),
            format!("{qps_without_overhead:.2}"),
        ),
        ("Min latency (ns)".into(), latencies_ns[0].to_string()),
        (
            "Max latency (ns)".into(),
            latencies_ns[queries - 1].to_string(),
        ),
        ("Mean latency (ns)".into(), mean_ns.to_string()),
        (
            "50.00 percentile latency (ns)".into(),
            percentile(&latencies_ns, 0.50).to_string(),
        ),
        (
            "90.00 percentile latency (ns)".into(),
            percentile(&latencies_ns, 0.90).to_string(),
        ),
    ];
    for (item, value) in rows {
        print_row(&[item, value]);
    }
    println!(
        "\nPaper reference (Pixel 3, 224x224, 1024+ queries): QPS 64.2, mean 15.56 ms, \
         p50 15.60 ms, p90 16.41 ms"
    );
}
