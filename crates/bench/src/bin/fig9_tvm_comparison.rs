//! Figure 9 — MNN vs TVM CPU inference time on six networks (Huawei P20 Pro,
//! Kirin 970).
//!
//! Run with: `cargo run --release -p mnn-bench --bin fig9_tvm_comparison`

use mnn_bench::{ms, print_row, print_table_header};
use mnn_device_sim::{estimate_cpu_latency_ms, DeviceProfile, Engine};
use mnn_models::{build, ModelKind};

fn main() {
    let p20 = DeviceProfile::by_name("P20").expect("P20 profile");
    let paper: [(ModelKind, f64, f64); 6] = [
        (ModelKind::MobileNetV1, 22.9, 33.4),
        (ModelKind::MobileNetV2, 33.6, 41.3),
        (ModelKind::SqueezeNetV1_1, 21.9, 26.0),
        (ModelKind::SqueezeNetV1_0, 47.7, 51.4),
        (ModelKind::ResNet50, 184.6, 232.5),
        (ModelKind::InceptionV3, 297.1, 444.7),
    ];

    print_table_header(
        "Figure 9: CPU inference time (ms) on Kirin 970 — MNN vs TVM",
        &[
            "network",
            "MNN (sim)",
            "TVM (sim)",
            "TVM/MNN",
            "paper MNN",
            "paper TVM",
        ],
    );
    for (kind, paper_mnn, paper_tvm) in paper {
        let mut graph = build(kind, 1, kind.default_input_size());
        graph.infer_shapes().expect("shape inference");
        let mnn = estimate_cpu_latency_ms(&graph, &p20, Engine::Mnn, 4);
        let tvm = estimate_cpu_latency_ms(&graph, &p20, Engine::Tvm, 4);
        print_row(&[
            kind.name().to_string(),
            ms(mnn),
            ms(tvm),
            format!("{:.2}x", tvm / mnn),
            ms(paper_mnn),
            ms(paper_tvm),
        ]);
    }
    println!(
        "\nShape to check: MNN is faster than TVM on every network even though it performs \
         no model-specific offline tuning (see table5_tvm_tuning for the deployment-cost side)."
    );
}
