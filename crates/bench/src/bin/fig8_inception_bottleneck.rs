//! Figure 8 — the bottleneck of case-by-case optimization on Inception-v3.
//!
//! Inception-v3 contains 1×7 / 7×1 factorized convolutions that NCNN's hand-written
//! kernel set does not cover; they fall back to a slow generic path and dominate the
//! network's latency. The engines are priced on the Huawei P20 (Kirin 970) profile,
//! as in the paper.
//!
//! Run with: `cargo run --release -p mnn-bench --bin fig8_inception_bottleneck`

use mnn_bench::{ms, print_row, print_table_header};
use mnn_device_sim::{
    estimate_cpu_latency_ms, estimate_gpu_latency_ms, DeviceProfile, Engine, GpuStandard,
};
use mnn_models::{build, ModelKind};

fn main() {
    let mut graph = build(ModelKind::InceptionV3, 1, 299);
    graph.infer_shapes().expect("shape inference");
    let p20 = DeviceProfile::by_name("P20").expect("P20 profile");

    print_table_header(
        "Figure 8: Inception-v3 on Huawei P20 (Kirin 970), inference time (ms)",
        &["engine / backend", "simulated", "paper"],
    );
    let mnn_cpu = estimate_cpu_latency_ms(&graph, &p20, Engine::Mnn, 4);
    let mnn_vulkan =
        estimate_gpu_latency_ms(&graph, &p20, Engine::Mnn, GpuStandard::Vulkan).unwrap_or(f64::NAN);
    let mace_cpu = estimate_cpu_latency_ms(&graph, &p20, Engine::Mace, 4);
    let mace_cl = estimate_gpu_latency_ms(&graph, &p20, Engine::Mace, GpuStandard::OpenCl)
        .unwrap_or(f64::NAN);
    let tflite_cpu = estimate_cpu_latency_ms(&graph, &p20, Engine::TfLite, 4);
    let ncnn_cpu = estimate_cpu_latency_ms(&graph, &p20, Engine::Ncnn, 4);

    let rows = [
        ("MNN-CPU", mnn_cpu, 297.1),
        ("MNN-Vulkan", mnn_vulkan, 160.9),
        ("MACE-CPU", mace_cpu, 749.1),
        ("MACE-OpenCL", mace_cl, 606.2),
        ("TF-Lite-CPU", tflite_cpu, 1039.1),
        ("NCNN-CPU", ncnn_cpu, 4501.1),
    ];
    for (label, simulated, paper) in rows {
        print_row(&[label.to_string(), ms(simulated), ms(paper)]);
    }
    println!(
        "\nShape to check: NCNN-CPU is an outlier (its un-optimized 1x7/7x1 convolutions \
         dominate), while MNN stays fastest because its general GEMM-based scheme covers them."
    );
}
