//! Table 5 — TVM auto-tuning / compilation cost versus MNN's runtime search.
//!
//! The TVM side uses the deployment-cost model fitted to the paper's measurements
//! (Samsung Galaxy S8, ResNet-18); the MNN side measures the *actual* pre-inference
//! time of this reproduction on ResNet-18, which is the cost MNN pays instead.
//!
//! Run with: `cargo run --release -p mnn-bench --bin table5_tvm_tuning`

use mnn_bench::{print_row, print_table_header};
use mnn_core::{Interpreter, SessionConfig};
use mnn_device_sim::tvm;
use mnn_models::{build, ModelKind};

fn main() {
    print_table_header(
        "Table 5: TVM deployment cost for ResNet-18 (seconds)",
        &["#trial", "auto-tuning (s)", "compiling (s)"],
    );
    for trials in [1u32, 10, 30] {
        print_row(&[
            trials.to_string(),
            format!("{:.0}", tvm::auto_tuning_seconds(trials)),
            format!("{:.0}", tvm::compile_seconds(trials)),
        ]);
    }

    // MNN's counterpart: runtime pre-inference, measured for real on this machine.
    let graph = build(ModelKind::ResNet18, 1, 128);
    let interpreter = Interpreter::from_graph(graph).expect("valid model");
    let session = interpreter
        .create_session(SessionConfig::cpu(4))
        .expect("session");
    let pre_ms = session.report().pre_inference_ms;
    println!(
        "\nMNN runtime search (pre-inference) for ResNet-18: {:.1} ms (= {:.4} s) — \
         performed on-device at session creation, no offline code generation required.",
        pre_ms,
        tvm::mnn_runtime_search_seconds(pre_ms)
    );
    println!("Paper reference: 1 -> 355 s / 40 s, 10 -> 1477 s / 41 s, 30 -> 4583 s / 41 s");
}
