//! `table_serving` — serving throughput: batch=1 vs dynamic micro-batching.
//!
//! The paper stops at single-request inference; `mnn-serve` layers a
//! concurrent serving runtime (session pool, bounded queue, micro-batcher) on
//! top of it. This table drives the same closed-loop load — `PRODUCERS`
//! threads submitting `REQUESTS` single-image requests — through two servers
//! that differ **only** in `max_batch`, on the same worker/thread budget:
//!
//! * `batch=1`: every request runs as its own inference.
//! * `micro≤N`: compatible requests are coalesced (up to `MAX_BATCH`) within a
//!   short window, stacked along the batch dimension, and run as one
//!   inference — amortizing per-run bookkeeping and per-kernel thread fan-out.
//!
//! Reported: requests/s, p50/p99 end-to-end latency, the observed mean batch
//! size, and the micro-batching speedup.
//!
//! Run with: `cargo run --release -p mnn-bench --bin table_serving`

use mnn_bench::{deterministic_input, print_row, print_table_header, time_ms};
use mnn_core::SessionConfig;
use mnn_models::{build, ModelKind};
use mnn_serve::{ServeError, Server, ServerStats};
use mnn_tensor::{Shape, Tensor};
use std::time::Duration;

const INPUT_SIZE: usize = 64;
const REQUESTS: usize = 96;
const PRODUCERS: usize = 4;
const WORKERS: usize = 2;
const THREADS_PER_WORKER: usize = 2;
const MAX_BATCH: usize = 8;
const WINDOW: Duration = Duration::from_millis(2);

struct LoadResult {
    rps: f64,
    stats: ServerStats,
}

/// Closed-loop load: `PRODUCERS` threads submit their share of `REQUESTS`,
/// retrying on backpressure, then wait for every response.
fn run_load(server: &Server, input: &Tensor) -> f64 {
    let (_, total_ms) = time_ms(|| {
        std::thread::scope(|scope| {
            for _ in 0..PRODUCERS {
                scope.spawn(|| {
                    let handles: Vec<_> = (0..REQUESTS / PRODUCERS)
                        .map(|_| loop {
                            match server.submit(&[("data", input)]) {
                                Ok(handle) => break handle,
                                Err(ServeError::QueueFull { .. }) => std::thread::yield_now(),
                                Err(other) => panic!("submit failed: {other}"),
                            }
                        })
                        .collect();
                    for handle in handles {
                        handle.wait().expect("inference failed");
                    }
                });
            }
        });
    });
    REQUESTS as f64 / (total_ms / 1000.0)
}

fn measure(kind: ModelKind, max_batch: usize) -> LoadResult {
    let server = Server::builder()
        .workers(WORKERS)
        .max_batch(max_batch)
        .batch_window(WINDOW)
        .queue_capacity(REQUESTS)
        .session_config(SessionConfig::cpu(THREADS_PER_WORKER))
        .build(build(kind, 1, INPUT_SIZE))
        .expect("server");
    let input = deterministic_input(Shape::nchw(1, 3, INPUT_SIZE, INPUT_SIZE), 11);
    // Warm every plan (batch sizes up to max_batch) before measuring.
    run_load(&server, &input);
    let rps = run_load(&server, &input);
    LoadResult {
        rps,
        stats: server.stats(),
    }
}

fn main() {
    println!(
        "serving load: {REQUESTS} requests from {PRODUCERS} producers, {WORKERS} workers × {THREADS_PER_WORKER} threads, {INPUT_SIZE}px input"
    );
    print_table_header(
        "Serving throughput: batch=1 vs dynamic micro-batching",
        &[
            "model",
            "mode",
            "req/s",
            "p50 ms",
            "p99 ms",
            "mean batch",
            "speedup",
        ],
    );
    for kind in [ModelKind::MobileNetV1, ModelKind::SqueezeNetV1_1] {
        let unbatched = measure(kind, 1);
        let batched = measure(kind, MAX_BATCH);
        let name = format!("{kind:?}");
        for (mode, result) in [
            ("batch=1", &unbatched),
            (&format!("micro<={MAX_BATCH}"), &batched),
        ] {
            print_row(&[
                name.clone(),
                mode.to_string(),
                format!("{:.1}", result.rps),
                format!("{:.2}", result.stats.p50_latency_ms),
                format!("{:.2}", result.stats.p99_latency_ms),
                format!("{:.2}", result.stats.mean_batch_size),
                format!("{:.2}x", result.rps / unbatched.rps),
            ]);
        }
    }
}
