//! Table 8 — Inception-v3 CPU latency on Pixel phones, TF-Lite vs MNN.
//!
//! Run with: `cargo run --release -p mnn-bench --bin table8_pixel`

use mnn_bench::{ms, print_row, print_table_header};
use mnn_device_sim::{estimate_cpu_latency_ms, DeviceProfile, Engine};
use mnn_models::{build, ModelKind};

fn main() {
    let mut graph = build(ModelKind::InceptionV3, 1, 299);
    graph.infer_shapes().expect("shape inference");

    print_table_header(
        "Table 8: Inception-v3 float CPU inference time (ms)",
        &[
            "phone",
            "#threads",
            "TF-Lite (sim)",
            "MNN (sim)",
            "speed-up",
            "paper TF-Lite",
            "paper MNN",
        ],
    );
    let paper = [
        ("Pixel2", 1usize, 974.0, 664.0),
        ("Pixel2", 4, 310.0, 214.0),
        ("Pixel3", 1, 873.0, 593.0),
        ("Pixel3", 4, 239.0, 160.0),
    ];
    for (device_name, threads, paper_tflite, paper_mnn) in paper {
        let device = DeviceProfile::by_name(device_name).expect("known device");
        let tflite = estimate_cpu_latency_ms(&graph, &device, Engine::TfLite, threads);
        let mnn = estimate_cpu_latency_ms(&graph, &device, Engine::Mnn, threads);
        print_row(&[
            device_name.to_string(),
            threads.to_string(),
            ms(tflite),
            ms(mnn),
            format!("{:.2}x", tflite / mnn),
            ms(paper_tflite),
            ms(paper_mnn),
        ]);
    }
    println!("\nShape to check: MNN is consistently faster than TF-Lite at both thread counts.");
}
