//! Table 3 — matrix multiplication with and without the Strassen algorithm.
//!
//! Run with: `cargo run --release -p mnn-bench --bin table3_strassen`

use mnn_bench::{
    deterministic_buffer, ms, print_row, print_table_header, time_avg_ms, TABLE3_SIZES,
};
use mnn_kernels::gemm::gemm;
use mnn_kernels::strassen::{planned_depth, strassen};

fn main() {
    print_table_header(
        "Table 3: matrix multiplication time (ms), direct vs Strassen",
        &[
            "matrix size (a, b, c)",
            "w/o Strassen",
            "w/ Strassen",
            "improvement",
            "recursion depth",
        ],
    );
    for (a, b, c) in TABLE3_SIZES {
        let lhs = deterministic_buffer(a * b, 1);
        let rhs = deterministic_buffer(b * c, 2);
        let mut out = vec![0.0f32; a * c];
        let runs = if a >= 1024 { 2 } else { 3 };
        let direct = time_avg_ms(runs, || gemm(a, b, c, &lhs, &rhs, &mut out));
        let with_strassen = time_avg_ms(runs, || strassen(a, b, c, &lhs, &rhs, &mut out));
        let improvement = (1.0 - with_strassen / direct) * 100.0;
        print_row(&[
            format!("({a}, {b}, {c})"),
            ms(direct),
            ms(with_strassen),
            format!("{improvement:.1}%"),
            planned_depth(a, b, c).to_string(),
        ]);
    }
    println!(
        "\nPaper reference (P10, ms): 23/23, 191/176 (7.9%), 388/359 (7.5%), 1501/1299 (13.5%)"
    );
}
