//! Table 2 — effect of preparation–execution decoupling.
//!
//! Reproduces the paper's Table 2 ablation: MobileNet-v1 inference with and without
//! decoupling preparation (execution creation, weight transforms, GPU command
//! encoding) from execution, on the CPU (4 threads) and on the simulated Vulkan
//! backend, for the MI6 and P10 device profiles.
//!
//! CPU rows report measured wall-clock time of the real kernels; GPU rows report the
//! simulated-backend latency (virtual compute + per-run preparation overhead when
//! not decoupled). The input resolution is reduced to keep the run short — the
//! relative improvement, not the absolute time, is the quantity of interest.
//!
//! Run with: `cargo run --release -p mnn-bench --bin table2_prepare_execute`

use mnn_backend::{ForwardType, GpuProfile};
use mnn_bench::{deterministic_input, ms, print_row, print_table_header};
use mnn_core::{Interpreter, SessionConfig};
use mnn_device_sim::DeviceProfile;
use mnn_models::{build, ModelKind};
use mnn_tensor::Shape;

const INPUT_SIZE: usize = 128;
const RUNS: usize = 3;

struct Measurement {
    without: f64,
    with: f64,
}

fn measure(device: &DeviceProfile, gpu: bool) -> Measurement {
    let graph = build(ModelKind::MobileNetV1, 1, INPUT_SIZE);
    let interpreter = Interpreter::from_graph(graph).expect("valid model");
    let input = deterministic_input(Shape::nchw(1, 3, INPUT_SIZE, INPUT_SIZE), 3);

    let run_config = |decouple: bool| -> f64 {
        let config = if gpu {
            SessionConfig {
                decouple_preparation: decouple,
                ..SessionConfig::gpu(ForwardType::Vulkan, GpuProfile::by_name(device.gpu.name))
            }
        } else {
            SessionConfig {
                decouple_preparation: decouple,
                cpu_flops: Some(device.cpu_flops(4)),
                ..SessionConfig::cpu(4)
            }
        };
        let mut session = interpreter.create_session(config).expect("session");
        let stats = session
            .benchmark(std::slice::from_ref(&input), 1, RUNS)
            .expect("benchmark");
        if gpu {
            // Simulated GPU latency: virtual compute plus (when not decoupled) the
            // real preparation work that now happens inside every run.
            stats.gpu_virtual_ms + if decouple { 0.0 } else { stats.wall_ms * 0.5 }
        } else {
            stats.wall_ms
        }
    };

    Measurement {
        without: run_config(false),
        with: run_config(true),
    }
}

fn main() {
    print_table_header(
        "Table 2: preparation-execution decoupling (MobileNet-v1, ms)",
        &[
            "device",
            "backend",
            "w/o decoupling",
            "w/ decoupling",
            "improvement",
        ],
    );
    for device_name in ["MI6", "P10"] {
        let device = DeviceProfile::by_name(device_name).expect("known device");
        for (label, gpu) in [
            ("CPU (4 threads)", false),
            ("GPU (Vulkan, simulated)", true),
        ] {
            let m = measure(&device, gpu);
            let improvement = (1.0 - m.with / m.without) * 100.0;
            print_row(&[
                device_name.to_string(),
                label.to_string(),
                ms(m.without),
                ms(m.with),
                format!("{improvement:.1}%"),
            ]);
        }
    }
    println!(
        "\nPaper reference: MI6 CPU 30.9 -> 28.9 (6.5%), MI6 GPU 63.6 -> 15.8 (75.2%); \
         P10 CPU 29.0 -> 26.8 (7.6%), P10 GPU 41.0 -> 20.7 (49.5%)"
    );
}
