//! `table_quant` — float vs int8 end-to-end inference.
//!
//! The paper's engine computes in FP32/FP16/Int8 and picks the cheapest kernel
//! per layer; this table measures what the int8 path buys on this
//! reproduction's CPU backend for real zoo models:
//!
//! * **weight bytes** — the whole point of storing `i8` constants: ~3.9×
//!   smaller weights (int8 payload + one f32 scale per output channel),
//! * **latency** — float pre-inference schemes (Winograd/Strassen/im2col)
//!   vs the integer `quantized-gemm` kernel (depthwise layers stay f32),
//! * **int8 layers** — how many conv/FC layers the scheme selection actually
//!   placed on the integer kernel,
//! * **max |Δprob|** — float-vs-int8 output drift on a deterministic input.
//!
//! Run with: `cargo run --release -p mnn-bench --bin table_quant`

use mnn_backend::ConvScheme;
use mnn_bench::{deterministic_input, print_row, print_table_header};
use mnn_converter::{optimize, quantize_weights, OptimizerOptions};
use mnn_core::{Interpreter, Session, SessionConfig};
use mnn_graph::Graph;
use mnn_models::{build, ModelKind};
use mnn_tensor::Shape;

const INPUT_SIZE: usize = 64;
const THREADS: usize = 4;
const WARMUP: usize = 1;
const RUNS: usize = 3;

fn session(graph: Graph) -> Session {
    Interpreter::from_graph(graph)
        .expect("interpreter")
        .create_session(SessionConfig::cpu(THREADS))
        .expect("session")
}

fn mib(bytes: usize) -> String {
    format!("{:.2} MiB", bytes as f64 / (1024.0 * 1024.0))
}

fn main() {
    print_table_header(
        &format!("Quantization: float vs int8 ({INPUT_SIZE}x{INPUT_SIZE}, {THREADS} threads)"),
        &[
            "model",
            "weights f32",
            "weights int8",
            "ratio",
            "f32 ms",
            "int8 ms",
            "int8 layers",
            "max |dprob|",
        ],
    );

    for kind in [
        ModelKind::MobileNetV1,
        ModelKind::SqueezeNetV1_1,
        ModelKind::ResNet18,
    ] {
        let mut float_graph = build(kind, 1, INPUT_SIZE);
        optimize(&mut float_graph, OptimizerOptions::default());
        let float_bytes = float_graph.constant_bytes();

        let mut quant_graph = float_graph.clone();
        let report = quantize_weights(&mut quant_graph);
        let quant_bytes = quant_graph.constant_bytes();

        let mut float_session = session(float_graph);
        let mut quant_session = session(quant_graph);
        let int8_layers = quant_session
            .report()
            .placements
            .iter()
            .filter(|p| p.scheme == Some(ConvScheme::QuantizedGemm))
            .count();

        let input = deterministic_input(Shape::nchw(1, 3, INPUT_SIZE, INPUT_SIZE), 42);
        let float_out = float_session
            .run_with(&[("data", &input)])
            .expect("float inference");
        let quant_out = quant_session
            .run_with(&[("data", &input)])
            .expect("quantized inference");
        let drift = float_out[0].max_abs_diff(&quant_out[0]);

        let inputs = [input];
        let float_ms = float_session
            .benchmark(&inputs, WARMUP, RUNS)
            .expect("float benchmark")
            .wall_ms;
        let quant_ms = quant_session
            .benchmark(&inputs, WARMUP, RUNS)
            .expect("quantized benchmark")
            .wall_ms;

        print_row(&[
            kind.name().to_string(),
            mib(float_bytes),
            mib(quant_bytes),
            format!("{:.2}x", report.compression_ratio()),
            format!("{float_ms:.2}"),
            format!("{quant_ms:.2}"),
            int8_layers.to_string(),
            format!("{drift:.5}"),
        ]);
    }
    println!(
        "\nweight bytes shrink ~4x (int8 payload + per-channel scales). The int8\n\
         im2col+GEMM path wins on GEMM-dominated models (SqueezeNet, ResNet);\n\
         MobileNet stays ~par because its depthwise layers deterministically\n\
         fall back to the f32 kernel."
    );
}
