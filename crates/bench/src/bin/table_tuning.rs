//! `table_tuning` — cost-model plans vs auto-tuned plans on the model zoo.
//!
//! The acceptance bar for `mnn-tune`: on every zoo model (float *and*
//! quantized), a `TuningMode::Full` plan must never run slower than the
//! cost-model plan beyond measurement noise, and a session created against the
//! warm persistent cache must perform **zero** candidate measurements (checked
//! here via the tuning-stats counter and asserted — a regression fails the
//! bin).
//!
//! Run with: `cargo run --release -p mnn-bench --bin table_tuning`
//! Calibrate the cost model instead with: `... --bin table_tuning -- --calibrate`

use mnn_bench::{deterministic_input, print_row, print_table_header, time_ms};
use mnn_converter::{optimize, quantize_weights, OptimizerOptions};
use mnn_core::{Interpreter, Session, SessionConfig, TuningMode};
use mnn_graph::Graph;
use mnn_models::{build, ModelKind};
use mnn_tensor::Shape;
use std::path::PathBuf;

const INPUT_SIZE: usize = 64;
const THREADS: usize = 4;
const WARMUP: usize = 1;
const RUNS: usize = 5;
/// Measurement-noise allowance for the never-slower check: relative plus an
/// absolute floor for sub-millisecond models.
const NOISE_RELATIVE: f64 = 1.15;
const NOISE_ABS_MS: f64 = 0.3;

fn cache_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mnn-table-tuning-{}-{tag}.json",
        std::process::id()
    ))
}

fn session(graph: Graph, config: SessionConfig) -> Session {
    Interpreter::from_graph(graph)
        .expect("interpreter")
        .create_session(config)
        .expect("session")
}

fn bench_run(session: &mut Session) -> f64 {
    let input = deterministic_input(Shape::nchw(1, 3, INPUT_SIZE, INPUT_SIZE), 42);
    session
        .benchmark(std::slice::from_ref(&input), WARMUP, RUNS)
        .expect("benchmark")
        .wall_ms
}

fn calibrate() {
    println!("calibrating the int8 cost factor on this machine...\n");
    for threads in [1, THREADS] {
        let calibration = mnn_tune::calibrate::calibrate_int8_cost_factor(threads);
        println!(
            "threads = {threads}: INT8_COST_FACTOR = {:.3}",
            calibration.factor
        );
        for s in &calibration.samples {
            println!(
                "  {:<20} float {:>8.3} ms   int8 {:>8.3} ms   factor {:.3}",
                s.description, s.float_ms, s.int8_ms, s.factor
            );
        }
    }
    println!(
        "\nshipped default (mnn_core::scheme::INT8_COST_FACTOR): {}",
        mnn_core::scheme::INT8_COST_FACTOR
    );
}

fn main() {
    if std::env::args().any(|a| a == "--calibrate") {
        calibrate();
        return;
    }

    print_table_header(
        &format!(
            "Auto-tuning: cost-model vs tuned plans ({INPUT_SIZE}x{INPUT_SIZE}, {THREADS} threads)"
        ),
        &[
            "model",
            "variant",
            "cost ms",
            "tuned ms",
            "speedup",
            "tuned nodes",
            "cold prep",
            "warm prep",
            "warm meas",
            "verdict",
        ],
    );

    let mut failures = 0usize;
    for kind in [
        ModelKind::MobileNetV1,
        ModelKind::SqueezeNetV1_1,
        ModelKind::ResNet18,
    ] {
        let mut float_graph = build(kind, 1, INPUT_SIZE);
        optimize(&mut float_graph, OptimizerOptions::default());
        let mut quant_graph = float_graph.clone();
        quantize_weights(&mut quant_graph);

        for (variant, graph) in [("float", float_graph), ("int8", quant_graph)] {
            let path = cache_path(&format!("{kind}-{variant}").replace([' ', '.'], "_"));
            let _ = std::fs::remove_file(&path);

            // Cost-model baseline.
            let mut cost_session = session(
                graph.clone(),
                SessionConfig::builder().threads(THREADS).build(),
            );
            let cost_ms = bench_run(&mut cost_session);

            // Cold tuned session: measures candidates, persists the cache.
            let tuned_config = SessionConfig::builder()
                .threads(THREADS)
                .tuning(TuningMode::Full)
                .tune_cache_path(&path)
                .build();
            let (mut tuned_session, cold_prep_ms) =
                time_ms(|| session(graph.clone(), tuned_config.clone()));
            let tuned_ms = bench_run(&mut tuned_session);
            let tuned_nodes = tuned_session.report().tuned_nodes;

            // Warm persistent start: simulate a fresh process, then assert the
            // acceptance criterion — zero candidate measurements.
            mnn_tune::clear_process_caches();
            let (warm_session, warm_prep_ms) =
                time_ms(|| session(graph.clone(), tuned_config.clone()));
            let warm_stats = warm_session.tuning_stats().expect("tuning enabled");
            assert!(
                warm_stats.loaded_from_disk,
                "{kind}/{variant}: warm session must load the persisted cache"
            );
            assert_eq!(
                warm_stats.measured_candidates, 0,
                "{kind}/{variant}: warm session must perform zero measurements"
            );

            let within_noise = tuned_ms <= cost_ms * NOISE_RELATIVE + NOISE_ABS_MS;
            if !within_noise {
                failures += 1;
            }
            print_row(&[
                kind.to_string(),
                variant.to_string(),
                format!("{cost_ms:.3}"),
                format!("{tuned_ms:.3}"),
                format!("{:.2}x", cost_ms / tuned_ms.max(1e-9)),
                tuned_nodes.to_string(),
                format!("{cold_prep_ms:.1} ms"),
                format!("{warm_prep_ms:.1} ms"),
                warm_stats.measured_candidates.to_string(),
                if within_noise { "PASS" } else { "SLOWER" }.to_string(),
            ]);
            let _ = std::fs::remove_file(&path);
        }
    }

    println!();
    if failures > 0 {
        println!(
            "FAIL: {failures} configuration(s) ran slower than the cost-model plan beyond noise"
        );
        std::process::exit(1);
    }
    println!("PASS: tuned plans never slower than cost-model plans beyond measurement noise");
}
