//! `table_tuning` — cost-model plans vs scalar-tuned vs SIMD-tuned plans on
//! the model zoo.
//!
//! Three plans per model/variant:
//!
//! * **cost** — cost-model scheme selection, no tuning (the paper's Eq. 2–3).
//! * **scalar-tuned** — `TuningMode::Full` with `force_scalar`, so the tuner
//!   measures only the scalar kernels.
//! * **simd-tuned** — `TuningMode::Full` with the full candidate pools (SIMD
//!   twins included on AVX2/NEON hosts).
//!
//! The acceptance bars, asserted (a regression fails the bin):
//!
//! * the SIMD-tuned plan must never run slower than the cost-model plan beyond
//!   measurement noise, and
//! * a session created against the warm persistent cache must perform **zero**
//!   candidate measurements (checked via the tuning-stats counter).
//!
//! The `simd x` column reports scalar-tuned / simd-tuned wall time — the
//! speedup attributable to the vectorized kernels alone, since both plans were
//! tuned the same way. On scalar-only hosts the two columns coincide.
//!
//! Run with: `cargo run --release -p mnn-bench --bin table_tuning`
//! Calibrate the cost model instead with: `... --bin table_tuning -- --calibrate`
//! CI smoke check (candidate enumeration only, no timing): `... -- --smoke`

use mnn_bench::{deterministic_input, print_row, print_table_header, time_ms};
use mnn_converter::{optimize, quantize_weights, OptimizerOptions};
use mnn_core::{Interpreter, Session, SessionConfig, TuningMode};
use mnn_graph::Graph;
use mnn_models::{build, ModelKind};
use mnn_tensor::Shape;
use std::path::PathBuf;

const INPUT_SIZE: usize = 64;
const THREADS: usize = 4;
const WARMUP: usize = 1;
const RUNS: usize = 3;
/// Independent benchmark repetitions per plan; the **minimum** mean is
/// reported. OS scheduler interference on shared hosts only ever inflates a
/// measurement, so min-of-means converges on the plan's real cost where a
/// single mean can be poisoned by one preempted run.
const REPEATS: usize = 3;
/// Measurement-noise allowance for the never-slower check: relative plus an
/// absolute floor for sub-millisecond models.
const NOISE_RELATIVE: f64 = 1.15;
const NOISE_ABS_MS: f64 = 0.3;

fn cache_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mnn-table-tuning-{}-{tag}.json",
        std::process::id()
    ))
}

fn session(graph: Graph, config: SessionConfig) -> Session {
    Interpreter::from_graph(graph)
        .expect("interpreter")
        .create_session(config)
        .expect("session")
}

fn bench_run(session: &mut Session) -> f64 {
    let input = deterministic_input(Shape::nchw(1, 3, INPUT_SIZE, INPUT_SIZE), 42);
    let mut best = f64::INFINITY;
    for rep in 0..REPEATS {
        let warmup = if rep == 0 { WARMUP } else { 0 };
        let mean = session
            .benchmark(std::slice::from_ref(&input), warmup, RUNS)
            .expect("benchmark")
            .wall_ms;
        best = best.min(mean);
    }
    best
}

fn calibrate() {
    println!("calibrating the int8 cost factor on this machine...\n");
    for threads in [1, THREADS] {
        let calibration = mnn_tune::calibrate::calibrate_int8_cost_factor(threads);
        println!(
            "threads = {threads}: INT8_COST_FACTOR = {:.3}",
            calibration.factor
        );
        for s in &calibration.samples {
            println!(
                "  {:<20} float {:>8.3} ms   int8 {:>8.3} ms   factor {:.3}",
                s.description, s.float_ms, s.int8_ms, s.factor
            );
        }
    }
    println!(
        "\nshipped default (mnn_core::scheme::INT8_COST_FACTOR): {}",
        mnn_core::scheme::INT8_COST_FACTOR
    );
}

/// CI smoke check: no wall-clock measurements, just structural assertions that
/// the SIMD kernel plumbing is wired through candidate enumeration and that a
/// forced-scalar session never sees (or plans) a SIMD scheme.
fn smoke() {
    let kernel_set = mnn_kernels::simd::active_kernel_set();
    let simd = mnn_kernels::simd::simd_available();
    println!("active kernel set: {kernel_set} (simd_available = {simd})");

    let mut graph = build(ModelKind::TinyCnn, 1, 16);
    optimize(&mut graph, OptimizerOptions::default());
    let max_tile = mnn_core::scheme::MAX_WINOGRAD_TILE;
    let mut conv_pools = 0usize;
    let mut pools_with_simd = 0usize;
    for node in graph.nodes() {
        let pool = mnn_tune::candidates_for_node(node, max_tile);
        if pool.is_empty() {
            continue;
        }
        conv_pools += 1;
        if pool.iter().any(|s| s.is_simd()) {
            pools_with_simd += 1;
        }
    }
    assert!(conv_pools > 0, "smoke model must yield tunable conv pools");
    if simd {
        assert_eq!(
            pools_with_simd, conv_pools,
            "every conv pool must offer SIMD twins on a SIMD host"
        );
    } else {
        assert_eq!(
            pools_with_simd, 0,
            "no pool may offer SIMD schemes when the kernel set is scalar"
        );
    }
    println!("candidate pools: {conv_pools} tunable, {pools_with_simd} with SIMD twins");

    // A forced-scalar tuned session must plan only scalar schemes, on any host.
    let scalar_session = session(
        graph.clone(),
        SessionConfig::builder()
            .threads(1)
            .tuning(TuningMode::Full)
            .force_scalar(true)
            .build(),
    );
    for p in &scalar_session.report().placements {
        if let Some(scheme) = p.scheme {
            assert!(
                !scheme.is_simd(),
                "force_scalar session planned SIMD scheme {scheme} for {}",
                p.name
            );
        }
    }
    mnn_tune::clear_process_caches();

    // A default tuned session on a SIMD host must have measured SIMD
    // candidates (whether they win is geometry-dependent and not asserted).
    let tuned = session(
        graph,
        SessionConfig::builder()
            .threads(1)
            .tuning(TuningMode::Full)
            .build(),
    );
    let stats = tuned.tuning_stats().expect("tuning enabled");
    assert!(
        stats.measured_candidates > 0,
        "tuned session must measure candidates"
    );
    mnn_tune::clear_process_caches();
    println!(
        "tuned smoke session: {} nodes tuned, {} candidates measured",
        tuned.report().tuned_nodes,
        stats.measured_candidates
    );
    println!("PASS: SIMD candidate enumeration and force_scalar filtering are wired");
}

fn main() {
    if std::env::args().any(|a| a == "--calibrate") {
        calibrate();
        return;
    }
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let kernel_set = mnn_kernels::simd::active_kernel_set();
    print_table_header(
        &format!(
            "Auto-tuning: cost-model vs scalar-tuned vs simd-tuned \
             ({INPUT_SIZE}x{INPUT_SIZE}, {THREADS} threads, kernel set {kernel_set})"
        ),
        &[
            "model",
            "variant",
            "cost ms",
            "scalar ms",
            "simd ms",
            "simd x",
            "tuned nodes",
            "warm meas",
            "verdict",
        ],
    );

    let mut failures = 0usize;
    for kind in [
        ModelKind::MobileNetV1,
        ModelKind::SqueezeNetV1_1,
        ModelKind::ResNet18,
    ] {
        let mut float_graph = build(kind, 1, INPUT_SIZE);
        optimize(&mut float_graph, OptimizerOptions::default());
        let mut quant_graph = float_graph.clone();
        quantize_weights(&mut quant_graph);

        for (variant, graph) in [("float", float_graph), ("int8", quant_graph)] {
            let tag = format!("{kind}-{variant}").replace([' ', '.'], "_");
            let scalar_path = cache_path(&format!("{tag}-scalar"));
            let simd_path = cache_path(&format!("{tag}-simd"));
            let _ = std::fs::remove_file(&scalar_path);
            let _ = std::fs::remove_file(&simd_path);

            // Cost-model baseline.
            let mut cost_session = session(
                graph.clone(),
                SessionConfig::builder().threads(THREADS).build(),
            );
            let cost_ms = bench_run(&mut cost_session);

            // Scalar-tuned: only the scalar kernels compete. Its own cache
            // path and a registry clear keep its measurements from leaking
            // into the SIMD-tuned session below (they share a fingerprint).
            mnn_tune::clear_process_caches();
            let scalar_config = SessionConfig::builder()
                .threads(THREADS)
                .tuning(TuningMode::Full)
                .tune_cache_path(&scalar_path)
                .force_scalar(true)
                .build();
            let mut scalar_session = session(graph.clone(), scalar_config);
            let scalar_ms = bench_run(&mut scalar_session);

            // SIMD-tuned: full candidate pools (scalar + SIMD twins).
            mnn_tune::clear_process_caches();
            let simd_config = SessionConfig::builder()
                .threads(THREADS)
                .tuning(TuningMode::Full)
                .tune_cache_path(&simd_path)
                .build();
            let (mut simd_session, _cold_prep_ms) =
                time_ms(|| session(graph.clone(), simd_config.clone()));
            let simd_ms = bench_run(&mut simd_session);
            let tuned_nodes = simd_session.report().tuned_nodes;

            // Warm persistent start: simulate a fresh process, then assert the
            // acceptance criterion — zero candidate measurements.
            mnn_tune::clear_process_caches();
            let (warm_session, _warm_prep_ms) =
                time_ms(|| session(graph.clone(), simd_config.clone()));
            let warm_stats = warm_session.tuning_stats().expect("tuning enabled");
            assert!(
                warm_stats.loaded_from_disk,
                "{kind}/{variant}: warm session must load the persisted cache"
            );
            assert_eq!(
                warm_stats.measured_candidates, 0,
                "{kind}/{variant}: warm session must perform zero measurements"
            );

            let within_noise = simd_ms <= cost_ms * NOISE_RELATIVE + NOISE_ABS_MS;
            if !within_noise {
                failures += 1;
            }
            print_row(&[
                kind.to_string(),
                variant.to_string(),
                format!("{cost_ms:.3}"),
                format!("{scalar_ms:.3}"),
                format!("{simd_ms:.3}"),
                format!("{:.2}x", scalar_ms / simd_ms.max(1e-9)),
                tuned_nodes.to_string(),
                warm_stats.measured_candidates.to_string(),
                if within_noise { "PASS" } else { "SLOWER" }.to_string(),
            ]);
            let _ = std::fs::remove_file(&scalar_path);
            let _ = std::fs::remove_file(&simd_path);
        }
    }

    println!();
    if failures > 0 {
        println!(
            "FAIL: {failures} configuration(s) ran slower than the cost-model plan beyond noise"
        );
        std::process::exit(1);
    }
    println!("PASS: tuned plans never slower than cost-model plans beyond measurement noise");
}
