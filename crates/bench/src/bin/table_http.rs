//! `table_http` — socket-level serving throughput through the HTTP frontend.
//!
//! Where `table_serving` measures the in-process serving runtime, this table
//! measures the whole network path: JSON encode → TCP → HTTP parse → JSON
//! decode → micro-batched inference → JSON encode → TCP. Closed-loop clients
//! (each a real `TcpStream` with keep-alive) hammer two zoo models behind one
//! [`mnn_http::HttpServer`]; a second phase shrinks the request queue to
//! force overload and reports how much load is shed as `429`.
//!
//! Reported per model: requests/s, p50/p99 end-to-end latency (client-side,
//! socket to socket), and the 429 rate under overload.
//!
//! Run with: `cargo run --release -p mnn-bench --bin table_http`

use mnn_bench::{print_row, print_table_header, time_ms};
use mnn_core::SessionConfig;
use mnn_http::{HttpConfig, HttpServer, InferRequest, ModelRegistry, ServeOptions, TensorJson};
use mnn_models::ModelKind;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const INPUT_SIZE: usize = 64;
const REQUESTS_PER_MODEL: usize = 96;
const CLIENTS: usize = 4;
const WORKERS: usize = 2;
const THREADS_PER_WORKER: usize = 2;
const MAX_BATCH: usize = 8;

/// One model's measured load: client-observed latencies and 429 count.
struct LoadResult {
    rps: f64,
    latencies_ms: Vec<f64>,
    rejected: usize,
}

impl LoadResult {
    fn percentile(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let index = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[index]
    }
}

/// Serialize the infer request body for `model`'s input once per client.
fn body_for(seed: usize) -> Vec<u8> {
    let elements = 3 * INPUT_SIZE * INPUT_SIZE;
    let request = InferRequest {
        inputs: BTreeMap::from([(
            "data".to_string(),
            TensorJson {
                shape: vec![1, 3, INPUT_SIZE, INPUT_SIZE],
                data: (0..elements)
                    .map(|i| ((i + seed * 13) % 251) as f32 * 0.008)
                    .collect(),
            },
        )]),
    };
    serde_json::to_vec(&request).expect("serialize request")
}

/// Read one Content-Length-framed response; returns its status code.
fn read_status(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<u16> {
    buf.clear();
    let mut chunk = [0u8; 16 * 1024];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]);
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(std::io::ErrorKind::InvalidData)?;
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    let mut have = buf.len() - head_end;
    while have < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        have += n;
    }
    Ok(status)
}

/// Closed-loop load: `CLIENTS` keep-alive connections each issue their share
/// of `REQUESTS_PER_MODEL` infer calls against `path` and time every
/// round-trip.
fn run_load(addr: SocketAddr, path: &str) -> LoadResult {
    let per_client = REQUESTS_PER_MODEL / CLIENTS;
    let (outcomes, total_ms) = time_ms(|| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    scope.spawn(move || {
                        let body = body_for(client);
                        let head = format!(
                            "POST {path} HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n",
                            body.len()
                        );
                        let mut stream = TcpStream::connect(addr).expect("connect");
                        stream
                            .set_read_timeout(Some(Duration::from_secs(120)))
                            .expect("timeout");
                        let mut response_buf = Vec::new();
                        let mut latencies = Vec::with_capacity(per_client);
                        let mut rejected = 0usize;
                        for _ in 0..per_client {
                            let (status, ms) = time_ms(|| {
                                stream.write_all(head.as_bytes()).expect("write");
                                stream.write_all(&body).expect("write");
                                read_status(&mut stream, &mut response_buf).expect("read")
                            });
                            match status {
                                200 => latencies.push(ms),
                                429 => rejected += 1,
                                other => panic!("unexpected status {other}"),
                            }
                        }
                        (latencies, rejected)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect::<Vec<_>>()
        })
    });
    let mut latencies_ms = Vec::new();
    let mut rejected = 0;
    for (lat, rej) in outcomes {
        latencies_ms.extend(lat);
        rejected += rej;
    }
    LoadResult {
        rps: latencies_ms.len() as f64 / (total_ms / 1000.0),
        latencies_ms,
        rejected,
    }
}

fn start_server(queue_capacity: usize) -> HttpServer {
    let options = ServeOptions {
        workers: WORKERS,
        max_batch: MAX_BATCH,
        batch_window: Duration::from_millis(2),
        queue_capacity: Some(queue_capacity),
        session: SessionConfig::cpu(THREADS_PER_WORKER),
        ..ServeOptions::default()
    };
    let mut registry = ModelRegistry::new();
    for kind in [ModelKind::MobileNetV1, ModelKind::SqueezeNetV1_1] {
        registry
            .register_zoo(kind, INPUT_SIZE, &options)
            .expect("register model");
    }
    HttpServer::bind("127.0.0.1:0", registry, HttpConfig::default()).expect("bind")
}

fn main() {
    println!(
        "HTTP load: {REQUESTS_PER_MODEL} requests/model from {CLIENTS} keep-alive clients, \
         {WORKERS} workers × {THREADS_PER_WORKER} threads, micro-batch ≤{MAX_BATCH}, {INPUT_SIZE}px input"
    );

    // Phase 1: ample queue — measure clean throughput and latency.
    let server = start_server(REQUESTS_PER_MODEL);
    let addr = server.local_addr();
    print_table_header(
        "HTTP serving throughput (socket to socket)",
        &["model", "req/s", "p50 ms", "p99 ms", "429 rate"],
    );
    for kind in [ModelKind::MobileNetV1, ModelKind::SqueezeNetV1_1] {
        let name = kind.name().to_ascii_lowercase();
        let path = format!("/v1/models/{name}/infer");
        run_load(addr, &path); // warm plans for every batch size
        let result = run_load(addr, &path);
        print_row(&[
            name,
            format!("{:.1}", result.rps),
            format!("{:.2}", result.percentile(0.50)),
            format!("{:.2}", result.percentile(0.99)),
            format!(
                "{:.1}%",
                100.0 * result.rejected as f64 / REQUESTS_PER_MODEL as f64
            ),
        ]);
    }
    server.shutdown();

    // Phase 2: 1-deep queue — overload; the table shows shed load, not hangs.
    let server = start_server(1);
    let addr = server.local_addr();
    print_table_header(
        "Overload behavior (queue capacity 1): load shed as 429",
        &["model", "req/s (served)", "p99 ms", "429 rate"],
    );
    for kind in [ModelKind::MobileNetV1, ModelKind::SqueezeNetV1_1] {
        let name = kind.name().to_ascii_lowercase();
        let path = format!("/v1/models/{name}/infer");
        let result = run_load(addr, &path);
        print_row(&[
            name,
            format!("{:.1}", result.rps),
            format!("{:.2}", result.percentile(0.99)),
            format!(
                "{:.1}%",
                100.0 * result.rejected as f64 / REQUESTS_PER_MODEL as f64
            ),
        ]);
    }
    let summary = server.shutdown();
    println!(
        "\ngraceful drain after load: drained={} aborted={}",
        summary.drained, summary.aborted_requests
    );
}
