//! Table 4 — operator support per backend per engine.
//!
//! The external-engine rows reproduce the survey data published in the paper; the
//! final row is computed from the operator set this reproduction actually
//! implements (see `mnn_backend::capability`).
//!
//! Run with: `cargo run --release -p mnn-bench --bin table4_backend_ops`

use mnn_backend::capability::{mnn_rs_capability, published_capabilities, EngineCapability};
use mnn_bench::{print_row, print_table_header};

fn cell(value: Option<u32>) -> String {
    value
        .map(|v| v.to_string())
        .unwrap_or_else(|| "-".to_string())
}

fn row(capability: &EngineCapability) -> Vec<String> {
    vec![
        capability.engine.to_string(),
        cell(capability.cpu_ops),
        cell(capability.metal_ops),
        cell(capability.opengl_ops),
        cell(capability.opencl_ops),
        cell(capability.vulkan_ops),
        capability.supported_os.to_string(),
    ]
}

fn main() {
    print_table_header(
        "Table 4: number of supported operators per backend",
        &["engine", "CPU", "Metal", "OpenGL", "OpenCL", "Vulkan", "OS"],
    );
    for capability in published_capabilities() {
        print_row(&row(&capability));
    }
    print_row(&row(&mnn_rs_capability()));
    println!(
        "\nNote: external-engine rows are the survey numbers published in the paper; the \
         MNN-rs row counts the operator kinds implemented by this reproduction's backends."
    );
}
