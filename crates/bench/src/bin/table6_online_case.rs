//! Table 6 — the production object-detection case study.
//!
//! The paper reports the average inference time of the main-object-detection model
//! behind an E-commerce image-search feature on its top-5 device types (≈90 ms on
//! every device despite their diversity). The production model is proprietary, so a
//! detection-style workload of equivalent cost (MobileNet-v1 backbone at 300×300,
//! ≈1 GMAC) is priced on the same device profiles with the analytic simulator.
//!
//! Run with: `cargo run --release -p mnn-bench --bin table6_online_case`

use mnn_bench::{ms, print_row, print_table_header};
use mnn_device_sim::{estimate_cpu_latency_ms, DeviceProfile, Engine};
use mnn_models::mobilenet_v1;

const TABLE6_DEVICES: [(&str, f64); 5] = [
    ("EML-AL00", 87.9),
    ("PBEM00", 84.5),
    ("PACM00", 92.0),
    ("COL-AL10", 95.1),
    ("OPPO R11", 91.4),
];

fn main() {
    // Detection-style workload: MobileNet-v1 backbone at 300x300 (≈1.0 GMAC), the
    // standard SSD-MobileNet input resolution.
    let mut workload = mobilenet_v1(1, 300, 1.0);
    workload.infer_shapes().expect("shape inference");

    print_table_header(
        "Table 6: top-5 production devices, average inference time (ms)",
        &["device", "CPU", "GPU", "simulated AIT", "paper AIT"],
    );
    let mut total = 0.0;
    for (name, paper_ms) in TABLE6_DEVICES {
        let device = DeviceProfile::by_name(name).expect("known device");
        let latency = estimate_cpu_latency_ms(&workload, &device, Engine::Mnn, 4);
        total += latency;
        print_row(&[
            name.to_string(),
            device.cpu.to_string(),
            device.gpu.name.to_string(),
            ms(latency),
            ms(paper_ms),
        ]);
    }
    println!(
        "\nSimulated average across devices: {:.1} ms (paper: 90.2 ms across >500 device types)",
        total / TABLE6_DEVICES.len() as f64
    );
}
