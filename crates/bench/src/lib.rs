//! Shared helpers for the benchmark harness.
//!
//! Each paper table / figure has a dedicated binary under `src/bin/` (see
//! `DESIGN.md` for the experiment index); the Criterion benches under `benches/`
//! cover the kernel-level measurements (Tables 1 and 3). This library holds the
//! workload definitions and output formatting they share.

#![deny(missing_docs)]

use mnn_kernels::conv::ConvParams;
use mnn_tensor::Shape;
use std::time::Instant;

/// The three convolution settings of the paper's Table 1, written as
/// `(kernel, in_channels, out_channels, input spatial size)`.
pub const TABLE1_SETTINGS: [(usize, usize, usize, usize); 3] =
    [(2, 3, 16, 224), (2, 512, 512, 16), (3, 64, 64, 112)];

/// The matrix sizes of the paper's Table 3, written as `(a, b, c)` for
/// `[a, b] × [b, c]`.
pub const TABLE3_SIZES: [(usize, usize, usize); 4] = [
    (256, 256, 256),
    (512, 512, 512),
    (512, 512, 1024),
    (1024, 1024, 1024),
];

/// Build the [`ConvParams`] for one Table 1 setting.
pub fn table1_conv(setting: (usize, usize, usize, usize)) -> ConvParams {
    let (k, ic, oc, _) = setting;
    ConvParams::square(ic, oc, k, 0)
}

/// Deterministic pseudo-random buffer (xorshift-based), used to build benchmark
/// inputs without depending on `rand` in hot paths.
pub fn deterministic_buffer(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 40) as f32 / (1u64 << 24) as f32;
            r * 2.0 - 1.0
        })
        .collect()
}

/// Deterministic NCHW input tensor for a model with the given input shape.
pub fn deterministic_input(shape: Shape, seed: u64) -> mnn_tensor::Tensor {
    let len = shape.num_elements();
    mnn_tensor::Tensor::from_vec(shape, deterministic_buffer(len, seed))
}

/// Time a closure, returning (result, milliseconds).
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1000.0)
}

/// Time a closure averaged over `runs` executions after one warm-up run.
pub fn time_avg_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    let _ = f();
    let start = Instant::now();
    for _ in 0..runs.max(1) {
        let _ = f();
    }
    start.elapsed().as_secs_f64() * 1000.0 / runs.max(1) as f64
}

/// Print a table header (title plus column names) in the plain-text format used by
/// all experiment binaries.
pub fn print_table_header(title: &str, columns: &[&str]) {
    println!("\n=== {title} ===");
    println!("{}", columns.join(" | "));
    println!(
        "{}",
        "-".repeat(columns.iter().map(|c| c.len() + 3).sum::<usize>().max(20))
    );
}

/// Print one table row.
pub fn print_row(cells: &[String]) {
    println!("{}", cells.join(" | "));
}

/// Format milliseconds with one decimal.
pub fn ms(value: f64) -> String {
    format!("{value:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_constants_match_the_paper() {
        assert_eq!(TABLE1_SETTINGS.len(), 3);
        assert_eq!(TABLE3_SIZES[3], (1024, 1024, 1024));
        let p = table1_conv(TABLE1_SETTINGS[1]);
        assert_eq!(p.in_channels, 512);
        assert_eq!(p.kernel_h, 2);
    }

    #[test]
    fn deterministic_buffer_is_reproducible_and_bounded() {
        let a = deterministic_buffer(128, 7);
        let b = deterministic_buffer(128, 7);
        let c = deterministic_buffer(128, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn timers_return_positive_durations() {
        let (_, t) = time_ms(|| std::thread::sleep(std::time::Duration::from_millis(2)));
        assert!(t >= 1.0);
        let avg = time_avg_ms(2, || 40 + 2);
        assert!(avg >= 0.0);
    }
}
