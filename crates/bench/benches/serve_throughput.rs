//! Serving throughput: batch=1 submission vs dynamic micro-batching.
//!
//! Drives a fixed closed-loop load (4 producers, 32 requests) through an
//! `mnn-serve` server configured with and without micro-batching, on the same
//! worker/thread budget. The batched configuration amortizes per-run
//! bookkeeping and per-kernel thread fan-out across coalesced requests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mnn_bench::deterministic_input;
use mnn_core::SessionConfig;
use mnn_models::{build, ModelKind};
use mnn_serve::{ServeError, Server};
use mnn_tensor::{Shape, Tensor};
use std::time::Duration;

const REQUESTS: usize = 32;
const PRODUCERS: usize = 4;

/// Push `REQUESTS` requests through the server from `PRODUCERS` threads and
/// wait for every response (closed-loop load, retry on backpressure).
fn drive(server: &Server, input: &Tensor) {
    std::thread::scope(|scope| {
        for _ in 0..PRODUCERS {
            scope.spawn(|| {
                let handles: Vec<_> = (0..REQUESTS / PRODUCERS)
                    .map(|_| loop {
                        match server.submit(&[("data", input)]) {
                            Ok(handle) => break handle,
                            Err(ServeError::QueueFull { .. }) => std::thread::yield_now(),
                            Err(other) => panic!("{other}"),
                        }
                    })
                    .collect();
                for handle in handles {
                    handle.wait().unwrap();
                }
            });
        }
    });
}

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput_tiny_cnn");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let input = deterministic_input(Shape::nchw(1, 3, 32, 32), 42);
    for max_batch in [1usize, 8] {
        let server = Server::builder()
            .workers(2)
            .max_batch(max_batch)
            .batch_window(Duration::from_millis(1))
            .queue_capacity(64)
            .session_config(SessionConfig::cpu(2))
            .build(build(ModelKind::TinyCnn, 1, 32))
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("32_requests", format!("max_batch_{max_batch}")),
            &max_batch,
            |b, _| b.iter(|| drive(&server, &input)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
