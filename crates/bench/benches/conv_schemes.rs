//! Criterion bench behind Table 1: convolution schemes on the paper's settings.
//!
//! Spatial sizes are reduced relative to the paper's Table 1 so a full
//! `cargo bench --workspace` stays fast; the table binary
//! (`table1_scheme_selection`) measures the original settings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mnn_backend::ConvScheme;
use mnn_bench::deterministic_buffer;
use mnn_core::scheme::{select_conv_scheme, MAX_WINOGRAD_TILE};
use mnn_kernels::conv::{conv2d_sliding_window, ConvParams};
use mnn_kernels::winograd::conv2d_winograd;
use std::time::Duration;

/// Reduced versions of the Table 1 settings: (k, ic, oc, spatial size).
const SETTINGS: [(usize, usize, usize, usize); 3] =
    [(2, 3, 16, 112), (2, 128, 128, 16), (3, 32, 32, 56)];

fn bench_conv_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_conv_schemes");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let threads = 4;

    for setting in SETTINGS {
        let (k, ic, oc, size) = setting;
        let params = ConvParams::square(ic, oc, k, 0);
        let input = deterministic_buffer(ic * size * size, 1);
        let weight = deterministic_buffer(params.weight_len(), 2);
        let label = format!("k{k}_ic{ic}_oc{oc}_s{size}");

        group.bench_with_input(BenchmarkId::new("sliding", &label), &setting, |b, _| {
            b.iter(|| conv2d_sliding_window(&params, threads, 1, size, size, &input, &weight, &[]))
        });
        group.bench_with_input(
            BenchmarkId::new("winograd_min", &label),
            &setting,
            |b, _| {
                b.iter(|| conv2d_winograd(&params, 2, threads, 1, size, size, &input, &weight, &[]))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("winograd_max", &label),
            &setting,
            |b, _| {
                b.iter(|| {
                    conv2d_winograd(
                        &params,
                        MAX_WINOGRAD_TILE,
                        threads,
                        1,
                        size,
                        size,
                        &input,
                        &weight,
                        &[],
                    )
                })
            },
        );
        let decision = select_conv_scheme(&params, size, size, MAX_WINOGRAD_TILE);
        group.bench_with_input(
            BenchmarkId::new("ours_selected", &label),
            &setting,
            |b, _| {
                b.iter(|| match decision.selected {
                    ConvScheme::Winograd { tile } => {
                        conv2d_winograd(&params, tile, threads, 1, size, size, &input, &weight, &[])
                    }
                    _ => {
                        conv2d_sliding_window(&params, threads, 1, size, size, &input, &weight, &[])
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_conv_schemes);
criterion_main!(benches);
