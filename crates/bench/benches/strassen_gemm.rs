//! Criterion bench behind Table 3: direct blocked GEMM versus Strassen.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mnn_bench::deterministic_buffer;
use mnn_kernels::gemm::gemm;
use mnn_kernels::strassen::strassen;
use std::time::Duration;

/// (a, b, c) for [a, b] x [b, c]. The 1024 case of the paper's Table 3 is covered
/// by the `table3_strassen` binary; keeping 256/512 here keeps `cargo bench` quick.
const SIZES: [(usize, usize, usize); 3] = [(256, 256, 256), (512, 512, 512), (512, 512, 1024)];

fn bench_strassen(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_strassen");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    for (a, b, n) in SIZES {
        let lhs = deterministic_buffer(a * b, 1);
        let rhs = deterministic_buffer(b * n, 2);
        let mut out = vec![0.0f32; a * n];
        let label = format!("{a}x{b}x{n}");
        group.bench_with_input(BenchmarkId::new("direct", &label), &label, |bench, _| {
            bench.iter(|| gemm(a, b, n, &lhs, &rhs, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("strassen", &label), &label, |bench, _| {
            bench.iter(|| strassen(a, b, n, &lhs, &rhs, &mut out))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strassen);
criterion_main!(benches);
