//! Ablation bench: Winograd output-tile sizes (the `n` of Eq. 2) and the generator.
//!
//! Complements Table 1 by sweeping every candidate tile size the pre-inference
//! cost model chooses between, plus the transform-generation cost itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mnn_bench::deterministic_buffer;
use mnn_kernels::conv::ConvParams;
use mnn_kernels::winograd::{conv2d_winograd, generate};
use std::time::Duration;

fn bench_tile_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("winograd_tile_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    let params = ConvParams::square(32, 32, 3, 1);
    let size = 56;
    let input = deterministic_buffer(32 * size * size, 1);
    let weight = deterministic_buffer(params.weight_len(), 2);
    for tile in [2usize, 3, 4, 6] {
        group.bench_with_input(
            BenchmarkId::new("conv3x3_ic32_oc32_s56", tile),
            &tile,
            |b, &tile| {
                b.iter(|| conv2d_winograd(&params, tile, 4, 1, size, size, &input, &weight, &[]))
            },
        );
    }
    group.finish();

    let mut gen_group = c.benchmark_group("winograd_generator");
    gen_group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for (n, k) in [(2usize, 3usize), (4, 3), (6, 3), (2, 7)] {
        gen_group.bench_with_input(
            BenchmarkId::new("generate", format!("F({n},{k})")),
            &(n, k),
            |b, &(n, k)| b.iter(|| generate(n, k)),
        );
    }
    gen_group.finish();
}

criterion_group!(benches, bench_tile_sizes);
criterion_main!(benches);
