//! Benches for the NC4HW4 layout conversion and end-to-end session execution
//! (including the preparation–execution decoupling ablation of Table 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mnn_bench::deterministic_input;
use mnn_core::{Interpreter, SessionConfig};
use mnn_models::{build, ModelKind};
use mnn_tensor::{DataLayout, Shape, Tensor};
use std::time::Duration;

fn bench_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("nc4hw4_layout");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for channels in [3usize, 32, 128] {
        let t = Tensor::from_vec(
            Shape::nchw(1, channels, 56, 56),
            (0..channels * 56 * 56).map(|v| v as f32).collect(),
        );
        group.bench_with_input(BenchmarkId::new("pack", channels), &channels, |b, _| {
            b.iter(|| t.to_layout(DataLayout::Nc4hw4))
        });
    }
    group.finish();
}

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_tiny_cnn");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));

    let graph = build(ModelKind::TinyCnn, 1, 32);
    let interpreter = Interpreter::from_graph(graph).expect("valid model");
    let input = deterministic_input(Shape::nchw(1, 3, 32, 32), 5);

    for (label, decouple) in [("decoupled", true), ("coupled", false)] {
        let mut session = interpreter
            .create_session(SessionConfig {
                decouple_preparation: decouple,
                ..SessionConfig::cpu(2)
            })
            .expect("session");
        group.bench_function(BenchmarkId::new("run", label), |b| {
            b.iter(|| {
                session
                    .run(std::slice::from_ref(&input))
                    .expect("inference")
            })
        });
    }
    group.finish();
}

/// Quantify the shape-signature pre-inference cache behind `resize_session`:
/// alternating between two known geometries (cache hit, plans swap in O(1))
/// versus alternating between a known and an always-new geometry (cold
/// pre-inference on every switch).
fn bench_resize(c: &mut Criterion) {
    let mut group = c.benchmark_group("resize_session");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));

    let graph = build(ModelKind::TinyCnn, 1, 32);
    let interpreter = Interpreter::from_graph(graph).expect("valid model");

    // Cached re-plan: 32x32 <-> 48x48, both geometries planned once up front.
    {
        let mut session = interpreter
            .create_session(SessionConfig::cpu(2))
            .expect("session");
        session
            .resize_input("data", Shape::nchw(1, 3, 48, 48))
            .expect("resize");
        session.resize_session().expect("warm 48");
        let mut size = 32usize;
        group.bench_function(BenchmarkId::new("replan", "cached-shape"), |b| {
            b.iter(|| {
                session
                    .resize_input("data", Shape::nchw(1, 3, size, size))
                    .expect("resize");
                session.resize_session().expect("cached re-plan");
                size = if size == 32 { 48 } else { 32 };
            })
        });
        assert!(
            session.plan_cache_hits() > 0,
            "bench must exercise the cache"
        );
    }

    // Cold pre-inference: cycle through a fixed set of spatial sizes much larger
    // than the session's plan-cache capacity, so (nearly) every switch misses
    // the cache while the geometry — and therefore the staged-tensor allocation
    // cost — stays bounded and comparable to the cached case above.
    {
        let mut session = interpreter
            .create_session(SessionConfig::cpu(2))
            .expect("session");
        let sizes: Vec<usize> = (33..65).collect(); // 32 geometries vs. 8 cache slots
        let mut index = 0usize;
        group.bench_function(BenchmarkId::new("replan", "cold-shape"), |b| {
            b.iter(|| {
                let size = sizes[index % sizes.len()];
                index += 1;
                session
                    .resize_input("data", Shape::nchw(1, 3, size, size))
                    .expect("resize");
                session.resize_session().expect("cold re-plan");
            })
        });
        println!(
            "  (cold-shape bench: {} cache hits over {} resizes)",
            session.plan_cache_hits(),
            index
        );
    }
    group.finish();
}

criterion_group!(benches, bench_layout, bench_session, bench_resize);
criterion_main!(benches);
