//! Functional tests for the serving runtime: correctness of single and batched
//! paths, backpressure, error surfaces and graceful shutdown.

use mnn_core::{Interpreter, SessionConfig};
use mnn_models::{build, ModelKind};
use mnn_serve::{ServeError, Server};
use mnn_tensor::{Shape, Tensor};
use std::time::Duration;

fn deterministic_input(size: usize, seed: u64) -> Tensor {
    let shape = Shape::nchw(1, 3, size, size);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let data = (0..shape.num_elements())
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        })
        .collect();
    Tensor::from_vec(shape, data)
}

fn tiny_server(workers: usize, max_batch: usize, window_ms: u64) -> Server {
    Server::builder()
        .workers(workers)
        .max_batch(max_batch)
        .batch_window(Duration::from_millis(window_ms))
        .session_config(SessionConfig::cpu(1))
        .build(build(ModelKind::TinyCnn, 1, 16))
        .unwrap()
}

#[test]
fn infer_matches_direct_session() {
    let server = tiny_server(2, 4, 1);
    let input = deterministic_input(16, 3);

    let interpreter = Interpreter::from_graph(build(ModelKind::TinyCnn, 1, 16)).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(1)).unwrap();
    let want = session.run_with(&[("data", &input)]).unwrap();

    let got = server.infer(&[("data", &input)]).unwrap();
    assert_eq!(got.len(), want.len());
    assert_eq!(got[0].shape(), want[0].shape());
    assert_eq!(got[0].data_f32(), want[0].data_f32());
}

#[test]
fn submitted_handles_resolve_with_correct_shapes() {
    let server = tiny_server(2, 4, 1);
    let handles: Vec<_> = (0..12)
        .map(|seed| {
            server
                .submit(&[("data", &deterministic_input(16, seed))])
                .unwrap()
        })
        .collect();
    for handle in handles {
        let outputs = handle.wait().unwrap();
        assert_eq!(outputs[0].shape().dims(), &[1, 10]);
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.failed, 0);
    assert!(stats.throughput_rps > 0.0);
    assert!(stats.p99_latency_ms >= stats.p50_latency_ms);
}

#[test]
fn compatible_requests_are_micro_batched() {
    // One worker and a generous window: requests submitted together must
    // coalesce instead of running one by one.
    let server = tiny_server(1, 4, 250);
    let input = deterministic_input(16, 7);
    let handles: Vec<_> = (0..8)
        .map(|_| server.submit(&[("data", &input)]).unwrap())
        .collect();
    let first = handles
        .into_iter()
        .map(|h| h.wait().unwrap().remove(0))
        .collect::<Vec<_>>();
    // All 8 identical requests: identical outputs.
    for output in &first {
        assert_eq!(output.data_f32(), first[0].data_f32());
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 8);
    assert!(
        stats.mean_batch_size > 1.0,
        "expected micro-batching, got histogram {:?}",
        stats.batch_histogram
    );
    assert!(stats
        .batch_histogram
        .iter()
        .all(|&(size, _)| (1..=4).contains(&size)));
}

#[test]
fn mixed_geometries_are_batched_separately_and_served_correctly() {
    let server = tiny_server(2, 4, 5);
    // tiny_cnn is fully convolutional up to global-average-pool, so other
    // spatial sizes are valid geometries.
    let handles: Vec<_> = (0..10)
        .map(|i| {
            let size = if i % 2 == 0 { 16 } else { 24 };
            let input = deterministic_input(size, i as u64);
            (size, server.submit(&[("data", &input)]).unwrap())
        })
        .collect();
    for (_, handle) in handles {
        let outputs = handle.wait().unwrap();
        assert_eq!(outputs[0].shape().dims(), &[1, 10]);
    }
    assert_eq!(server.stats().completed, 10);
}

#[test]
fn invalid_requests_are_rejected_at_submit() {
    let server = tiny_server(1, 2, 1);
    let input = deterministic_input(16, 1);
    assert!(matches!(
        server.submit(&[("nope", &input)]),
        Err(ServeError::InvalidRequest(_))
    ));
    assert!(matches!(
        server.submit(&[]),
        Err(ServeError::InvalidRequest(_))
    ));
    assert!(matches!(
        server.submit(&[("data", &input), ("data", &input)]),
        Err(ServeError::InvalidRequest(_))
    ));
}

#[test]
fn bad_input_shape_fails_only_its_own_batch() {
    let server = tiny_server(1, 4, 1);
    // Channel count 5 contradicts the stem conv weights: resize fails, the
    // request gets an inference error, and the server keeps serving.
    let bad = Tensor::zeros(Shape::nchw(1, 5, 16, 16));
    let err = server.infer(&[("data", &bad)]).unwrap_err();
    assert!(matches!(err, ServeError::Inference(_)));

    let good = deterministic_input(16, 2);
    let outputs = server.infer(&[("data", &good)]).unwrap();
    assert_eq!(outputs[0].shape().dims(), &[1, 10]);
    let stats = server.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn engine_panic_becomes_an_error_instead_of_hanging_clients() {
    let server = tiny_server(1, 2, 1);
    // Right shape, wrong dtype: the f32 kernels panic on it. The worker must
    // contain the panic, answer with an error, and keep serving.
    let poison = Tensor::try_from_i32(
        Shape::nchw(1, 3, 16, 16),
        vec![0; Shape::nchw(1, 3, 16, 16).num_elements()],
    )
    .unwrap();
    match server.infer(&[("data", &poison)]) {
        Err(ServeError::Inference(msg)) => assert!(msg.contains("panicked"), "got: {msg}"),
        other => panic!("expected contained panic, got {other:?}"),
    }
    // The contained panic is surfaced as data, not just a log line.
    let stats = server.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.failed, 1);
    let outputs = server
        .infer(&[("data", &deterministic_input(16, 5))])
        .unwrap();
    assert_eq!(outputs[0].shape().dims(), &[1, 10]);
    let stats = server.stats();
    assert_eq!(
        stats.worker_panics, 1,
        "panic counter is cumulative, not per-request"
    );
    assert_eq!(stats.completed, 1, "the server keeps serving after a panic");
}

#[test]
fn queue_applies_backpressure_under_flood() {
    let server = Server::builder()
        .workers(1)
        .max_batch(1)
        .queue_capacity(2)
        .session_config(SessionConfig::cpu(1))
        .build(build(ModelKind::TinyCnn, 1, 16))
        .unwrap();
    let input = deterministic_input(16, 9);
    let mut accepted = Vec::new();
    let mut rejections = 0u32;
    for _ in 0..200 {
        match server.submit(&[("data", &input)]) {
            Ok(handle) => accepted.push(handle),
            Err(ServeError::QueueFull { capacity }) => {
                assert_eq!(capacity, 2);
                rejections += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(
        rejections > 0,
        "a 200-request flood must hit a 2-deep queue"
    );
    for handle in accepted {
        handle.wait().unwrap();
    }
    assert_eq!(server.stats().rejected, u64::from(rejections));
}

#[test]
fn shutdown_serves_queued_requests_then_rejects_new_ones() {
    let server = tiny_server(1, 2, 1);
    let input = deterministic_input(16, 4);
    let handles: Vec<_> = (0..6)
        .map(|_| server.submit(&[("data", &input)]).unwrap())
        .collect();
    server.shutdown();
    for handle in handles {
        let outputs = handle.wait().unwrap();
        assert_eq!(outputs[0].shape().dims(), &[1, 10]);
    }
}

#[test]
fn deadline_shutdown_with_generous_deadline_serves_everything() {
    let server = tiny_server(1, 2, 1);
    let input = deterministic_input(16, 4);
    let handles: Vec<_> = (0..6)
        .map(|_| server.submit(&[("data", &input)]).unwrap())
        .collect();
    let report = server.shutdown_with_deadline(Duration::from_secs(60));
    assert!(report.drained, "generous deadline must drain the queue");
    assert_eq!(report.aborted, 0);
    for handle in handles {
        let outputs = handle.wait().unwrap();
        assert_eq!(outputs[0].shape().dims(), &[1, 10]);
    }
}

#[test]
fn deadline_shutdown_fails_queued_requests_instead_of_abandoning_them() {
    // One worker, deep queue, ZERO deadline: the worker grabs at most one
    // batch; everything else queued must get ShuttingDown — never a hang.
    let server = Server::builder()
        .workers(1)
        .max_batch(1)
        .queue_capacity(64)
        .session_config(SessionConfig::cpu(1))
        .build(build(ModelKind::TinyCnn, 1, 16))
        .unwrap();
    let input = deterministic_input(16, 8);
    let handles: Vec<_> = (0..32)
        .map(|_| server.submit(&[("data", &input)]).unwrap())
        .collect();
    let report = server.shutdown_with_deadline(Duration::ZERO);
    let mut served = 0usize;
    let mut aborted = 0usize;
    for handle in handles {
        // Every handle resolves promptly — the whole point of the deadline.
        match handle.wait() {
            Ok(outputs) => {
                assert_eq!(outputs[0].shape().dims(), &[1, 10]);
                served += 1;
            }
            Err(ServeError::ShuttingDown) => aborted += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(served + aborted, 32);
    assert_eq!(aborted, report.aborted);
    assert_eq!(report.drained, aborted == 0);
    assert!(
        aborted > 0,
        "a zero deadline with one worker and 32 queued requests must abort some"
    );
}

#[test]
fn builder_rejects_inconsistent_configs() {
    let graph = || build(ModelKind::TinyCnn, 1, 16);
    assert!(matches!(
        Server::builder().workers(0).build(graph()),
        Err(ServeError::InvalidConfig(_))
    ));
    assert!(matches!(
        Server::builder().max_batch(0).build(graph()),
        Err(ServeError::InvalidConfig(_))
    ));
    assert!(matches!(
        Server::builder().queue_capacity(0).build(graph()),
        Err(ServeError::InvalidConfig(_))
    ));
}

#[test]
fn handles_can_cross_threads() {
    let server = tiny_server(2, 2, 1);
    let input = deterministic_input(16, 11);
    let handle = server.submit(&[("data", &input)]).unwrap();
    let joined = std::thread::spawn(move || handle.wait()).join().unwrap();
    assert_eq!(joined.unwrap()[0].shape().dims(), &[1, 10]);
}

#[test]
fn tuned_server_prewarms_with_one_shared_tuning_pass() {
    // Unique cache path so this test's counters are isolated from any other
    // tuning in the process.
    let path = std::env::temp_dir().join(format!(
        "mnn-serve-tuned-prewarm-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let config = SessionConfig::builder()
        .threads(1)
        .tuning(mnn_core::TuningMode::Full)
        .tune_cache_path(&path)
        .build();
    let server = Server::builder()
        .workers(3)
        .max_batch(1)
        .session_config(config.clone())
        .build(build(ModelKind::TinyCnn, 1, 16))
        .unwrap();

    // All three workers were pre-warmed; the shared cache shows exactly one
    // tuning pass (one set of measured candidates, not three).
    let interpreter = Interpreter::from_graph(build(ModelKind::TinyCnn, 1, 16)).unwrap();
    let session = interpreter.create_session(config).unwrap();
    let stats = session.tuning_stats().unwrap();
    assert!(stats.tuned_nodes > 0, "TinyCnn has tunable convolutions");
    let after_pool = stats.measured_candidates;
    // The extra (4th) session above measured nothing either: every signature
    // was already tuned by the server's first worker.
    assert_eq!(session.report().tuning_measured_candidates, 0);

    // Tuned responses still match an untuned reference session bit-for-bit is
    // not required (different schemes round differently); they must agree
    // within kernel tolerance.
    let input = deterministic_input(16, 9);
    let mut reference = Interpreter::from_graph(build(ModelKind::TinyCnn, 1, 16))
        .unwrap()
        .create_session(SessionConfig::cpu(1))
        .unwrap();
    let want = reference.run_with(&[("data", &input)]).unwrap();
    let got = server.infer(&[("data", &input)]).unwrap();
    assert_eq!(got[0].shape(), want[0].shape());
    assert!(got[0].max_abs_diff(&want[0]) < 1e-2);

    // The pre-warm persisted the measurements for the next process.
    assert!(path.exists(), "tuning cache file was persisted");
    drop(server);
    let stats_after = mnn_core::Interpreter::from_graph(build(ModelKind::TinyCnn, 1, 16))
        .unwrap()
        .create_session(
            SessionConfig::builder()
                .threads(1)
                .tuning(mnn_core::TuningMode::Full)
                .tune_cache_path(&path)
                .build(),
        )
        .unwrap()
        .tuning_stats()
        .unwrap();
    assert_eq!(
        stats_after.measured_candidates, after_pool,
        "no further measurements after the pool's single pass"
    );
    let _ = std::fs::remove_file(&path);
}
