//! Regression test: the `mnn_queue_depth` gauge must return to its baseline
//! after a deadline-bounded shutdown, whether queued requests were served or
//! evicted.
//!
//! The gauge is decremented at every removal site *under the queue lock*
//! (head pop, batch drain, eviction), so it mirrors the deque exactly. An
//! earlier audit found decrements happening outside the lock, which let a
//! racing snapshot observe depths that never existed. This test keeps the
//! whole lifecycle honest end to end.
//!
//! Kept in its own integration-test binary: the gauge is process-global, so
//! concurrent server tests in the same process would perturb it.

use mnn_models::{build, ModelKind};
use mnn_serve::Server;
use mnn_tensor::{Shape, Tensor};
use std::time::Duration;

fn queue_depth_gauge() -> mnn_obs::Gauge {
    mnn_obs::global().gauge(
        mnn_obs::metrics::names::QUEUE_DEPTH,
        "Requests currently queued across serve queues.",
    )
}

#[test]
fn queue_gauge_returns_to_zero_after_deadline_shutdown() {
    let gauge = queue_depth_gauge();
    let baseline = gauge.get();

    // One slow worker and a deep queue guarantee requests are still queued
    // when the drain deadline (zero) expires, exercising the eviction path.
    let server = Server::builder()
        .workers(1)
        .max_batch(2)
        .queue_capacity(64)
        .build(build(ModelKind::TinyCnn, 1, 32))
        .expect("server builds");
    let input = Tensor::zeros(Shape::nchw(1, 3, 32, 32));
    let handles: Vec<_> = (0..16)
        .map(|_| server.submit(&[("data", &input)]).expect("queue has room"))
        .collect();

    let report = server.shutdown_with_deadline(Duration::ZERO);
    // Every waiter resolves: served or failed, never hung.
    let mut served = 0usize;
    let mut evicted = 0usize;
    for handle in handles {
        match handle.wait() {
            Ok(_) => served += 1,
            Err(mnn_serve::ServeError::ShuttingDown) => evicted += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!(served + evicted, 16);
    assert_eq!(evicted, report.aborted, "report matches waiter outcomes");

    assert_eq!(
        gauge.get(),
        baseline,
        "queue gauge must return to baseline after shutdown \
         ({served} served, {evicted} evicted)"
    );
}

#[test]
fn queue_gauge_returns_to_zero_after_full_drain() {
    let gauge = queue_depth_gauge();
    let baseline = gauge.get();

    let server = Server::builder()
        .workers(2)
        .max_batch(4)
        .build(build(ModelKind::TinyCnn, 1, 16))
        .expect("server builds");
    let input = Tensor::zeros(Shape::nchw(1, 3, 16, 16));
    let handles: Vec<_> = (0..12)
        .map(|_| server.submit(&[("data", &input)]).expect("queue has room"))
        .collect();
    for handle in handles {
        handle.wait().expect("request served");
    }

    let report = server.shutdown_with_deadline(Duration::from_secs(10));
    assert!(report.drained, "nothing should be evicted: {report:?}");
    assert_eq!(report.aborted, 0);
    assert_eq!(gauge.get(), baseline);
}
