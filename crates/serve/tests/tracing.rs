//! Request-tracing contracts of the serving runtime: every traced request's
//! waterfall is complete, batch links name exactly the coalesced members, and
//! op spans never leak across traces under producer contention.
//!
//! These tests attach a [`FlightRecorder`] explicitly, so they pass unchanged
//! under the CI job that forces `MNN_TRACE=off` — the environment variable is
//! only the *default* for frontends; explicit configuration wins.

use mnn_models::{build, ModelKind};
use mnn_serve::{FlightRecorder, ServeError, Server};
use mnn_tensor::{Shape, Tensor};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn input() -> Tensor {
    Tensor::zeros(Shape::nchw(1, 3, 16, 16))
}

/// Traces are pushed into the recorder *after* the response slot is
/// fulfilled, so a client can observe its answer a beat before the trace
/// lands. Poll briefly instead of racing.
fn wait_for_completed(recorder: &FlightRecorder, count: u64) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while recorder.completed() < count {
        assert!(
            Instant::now() < deadline,
            "recorder stuck at {}/{count} completed traces",
            recorder.completed()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn owned_traces_capture_the_full_waterfall() {
    let recorder = Arc::new(FlightRecorder::new());
    let server = Server::builder()
        .workers(1)
        .max_batch(4)
        .trace_recorder(Arc::clone(&recorder))
        .build(build(ModelKind::TinyCnn, 1, 16))
        .unwrap();

    let data = input();
    server.infer(&[("data", &data)]).unwrap();
    wait_for_completed(&recorder, 1);

    let traces = recorder.recent();
    assert_eq!(traces.len(), 1);
    let trace = &traces[0];
    assert_eq!(trace.status, 200);
    assert!(!trace.adopted, "embedded submissions create root traces");
    assert_eq!(trace.model, server.graph().name());

    let stage_names: Vec<&str> = trace.stages.iter().map(|s| s.name.as_str()).collect();
    for required in [
        "serve",
        "queue_wait",
        "batch_assembly",
        "inference",
        "scatter",
    ] {
        assert!(
            stage_names.contains(&required),
            "missing stage {required} in {stage_names:?}"
        );
    }
    // The depth-0 serve stage spans the request's whole life, so coverage of
    // an embedded (no HTTP frontend) trace is essentially total.
    assert!(trace.coverage > 0.95, "coverage = {}", trace.coverage);
    // Kernel spans nest under the inference stage, stamped with this trace.
    assert!(!trace.ops.is_empty(), "per-op spans must be captured");
    let inference = trace.stages.iter().find(|s| s.name == "inference").unwrap();
    for op in &trace.ops {
        assert_eq!(op.trace_id, trace.trace_id);
        assert!(
            op.start_us >= inference.start_us - 50.0
                && op.start_us <= inference.start_us + inference.dur_us + 50.0,
            "op {} at {}us outside inference stage [{}, {}]us",
            op.name,
            op.start_us,
            inference.start_us,
            inference.start_us + inference.dur_us
        );
    }
    let batch = trace.batch.as_ref().expect("executed batches are linked");
    assert_eq!(batch.size, 1);
    assert_eq!(batch.members, vec![trace.trace_id.clone()]);
}

#[test]
fn batch_links_name_exactly_the_coalesced_members() {
    let recorder = Arc::new(FlightRecorder::new());
    let server = Server::builder()
        .workers(1)
        .max_batch(4)
        .batch_window(Duration::from_millis(250))
        .trace_recorder(Arc::clone(&recorder))
        .build(build(ModelKind::TinyCnn, 1, 16))
        .unwrap();

    let data = input();
    let handles: Vec<_> = (0..3)
        .map(|_| server.submit(&[("data", &data)]).unwrap())
        .collect();
    for handle in handles {
        handle.wait().unwrap();
    }
    wait_for_completed(&recorder, 3);

    let traces = recorder.recent();
    assert_eq!(traces.len(), 3);
    let first_link = traces[0].batch.as_ref().expect("batch link");
    assert_eq!(first_link.size, 3, "single worker + window coalesces all 3");
    let mut linked = first_link.members.clone();
    linked.sort();
    let mut actual: Vec<String> = traces.iter().map(|t| t.trace_id.clone()).collect();
    actual.sort();
    assert_eq!(linked, actual, "link must name exactly the members");
    for trace in &traces {
        let link = trace.batch.as_ref().expect("every member is linked");
        assert_eq!(link.span_id, first_link.span_id, "one span per batch");
        let mut members = link.members.clone();
        members.sort();
        assert_eq!(members, linked);
        // Every member got the batch's op spans, restamped onto its own id.
        assert!(!trace.ops.is_empty());
        assert!(trace.ops.iter().all(|op| op.trace_id == trace.trace_id));
    }
}

#[test]
fn concurrent_producers_never_leak_spans_across_traces() {
    const PRODUCERS: usize = 8;
    const REQUESTS_PER_PRODUCER: usize = 25;

    let recorder = Arc::new(FlightRecorder::with_capacity(1024));
    let server = Arc::new(
        Server::builder()
            .workers(4)
            .max_batch(4)
            .batch_window(Duration::from_millis(2))
            .queue_capacity(32)
            .trace_recorder(Arc::clone(&recorder))
            .build(build(ModelKind::TinyCnn, 1, 16))
            .unwrap(),
    );

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|producer| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                for i in 0..REQUESTS_PER_PRODUCER {
                    let data = input();
                    let handle = loop {
                        match server.submit(&[("data", &data)]) {
                            Ok(handle) => break handle,
                            Err(ServeError::QueueFull { .. }) => {
                                std::thread::sleep(Duration::from_micros(200))
                            }
                            Err(other) => panic!("producer {producer}: {other}"),
                        }
                    };
                    handle
                        .wait()
                        .unwrap_or_else(|e| panic!("producer {producer} request {i}: {e}"));
                }
            })
        })
        .collect();
    for producer in producers {
        producer.join().unwrap();
    }

    let total = (PRODUCERS * REQUESTS_PER_PRODUCER) as u64;
    wait_for_completed(&recorder, total);
    let traces = recorder.recent();
    assert_eq!(traces.len(), total as usize, "ring retains every trace");

    let mut seen = std::collections::HashSet::new();
    for trace in &traces {
        assert!(seen.insert(trace.trace_id.clone()), "trace ids are unique");
        assert_eq!(trace.status, 200);
        // No cross-request leakage: every span inside a trace carries that
        // trace's id, and the batch link includes the trace itself.
        assert!(trace.ops.iter().all(|op| op.trace_id == trace.trace_id));
        let link = trace.batch.as_ref().expect("linked");
        assert!(link.members.contains(&trace.trace_id));
        assert!(trace
            .stages
            .iter()
            .any(|s| s.name == "queue_wait" && s.depth == 1));
    }
}
