//! Stress test: 8 producer threads × 100 requests through a 4-worker server.
//!
//! Every response must be **bit-identical** to a single-threaded `run_with`
//! reference — micro-batching, session pooling and the concurrent queue must
//! not change a single bit of any answer. Producers retry on `QueueFull`, so
//! the bounded queue's backpressure path is exercised under real contention.
//!
//! The suite runs twice: once on the float graph and once on its int8-quantized
//! counterpart. The quantized variant additionally guards the kernel-level
//! batch-invariance contract — activations are quantized with per-sample
//! scales, so stacking requests into a micro-batch must not move a single bit.

use mnn_converter::quantize_weights;
use mnn_core::{Interpreter, SessionConfig};
use mnn_models::{build, ModelKind};
use mnn_serve::{ServeError, Server};
use mnn_tensor::{Shape, Tensor};
use std::sync::Arc;
use std::time::Duration;

const PRODUCERS: usize = 8;
const REQUESTS_PER_PRODUCER: usize = 100;
const UNIQUE_INPUTS: usize = 16;
const INPUT_SIZE: usize = 16;

fn deterministic_input(seed: u64) -> Tensor {
    let shape = Shape::nchw(1, 3, INPUT_SIZE, INPUT_SIZE);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let data = (0..shape.num_elements())
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        })
        .collect();
    Tensor::from_vec(shape, data)
}

#[test]
fn concurrent_responses_are_bit_identical_to_single_threaded_reference() {
    run_stress(
        || build(ModelKind::TinyCnn, 1, INPUT_SIZE),
        REQUESTS_PER_PRODUCER,
    );
}

/// Quantized-graph variant: micro-batched int8 responses must be bit-identical
/// to unbatched quantized runs. This fails if activation quantization ever
/// derives a scale from the whole stacked batch instead of per sample. (Fewer
/// requests per producer than the float run: the scalar int8 kernels are slower
/// in debug builds, and the batching/backpressure paths saturate long before.)
#[test]
fn quantized_concurrent_responses_are_bit_identical_to_single_threaded_reference() {
    run_stress(
        || {
            let mut graph = build(ModelKind::TinyCnn, 1, INPUT_SIZE);
            let report = quantize_weights(&mut graph);
            assert!(report.quantized_tensors > 0, "model must actually quantize");
            graph
        },
        REQUESTS_PER_PRODUCER / 2,
    );
}

fn run_stress(model: impl Fn() -> mnn_graph::Graph, requests_per_producer: usize) {
    // Single-threaded reference outputs for every distinct input.
    let interpreter = Interpreter::from_graph(model()).unwrap();
    let mut reference_session = interpreter.create_session(SessionConfig::cpu(1)).unwrap();
    let inputs: Vec<Tensor> = (0..UNIQUE_INPUTS)
        .map(|i| deterministic_input(i as u64))
        .collect();
    let expected: Vec<Vec<Tensor>> = inputs
        .iter()
        .map(|input| reference_session.run_with(&[("data", input)]).unwrap())
        .collect();

    // A small queue forces producers through the backpressure/retry path.
    let server = Arc::new(
        Server::builder()
            .workers(4)
            .max_batch(4)
            .batch_window(Duration::from_millis(2))
            .queue_capacity(32)
            .session_config(SessionConfig::cpu(1))
            .build(model())
            .unwrap(),
    );
    let inputs = Arc::new(inputs);
    let expected = Arc::new(expected);

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|producer| {
            let server = Arc::clone(&server);
            let inputs = Arc::clone(&inputs);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut retries = 0u32;
                for i in 0..requests_per_producer {
                    let which = (producer * requests_per_producer + i) % UNIQUE_INPUTS;
                    let handle = loop {
                        match server.submit(&[("data", &inputs[which])]) {
                            Ok(handle) => break handle,
                            Err(ServeError::QueueFull { .. }) => {
                                retries += 1;
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(other) => panic!("producer {producer}: {other}"),
                        }
                    };
                    let outputs = handle
                        .wait()
                        .unwrap_or_else(|e| panic!("producer {producer} request {i} failed: {e}"));
                    let want = &expected[which];
                    assert_eq!(outputs.len(), want.len());
                    for (got, want) in outputs.iter().zip(want) {
                        assert_eq!(got.shape(), want.shape());
                        assert_eq!(
                            got.data_f32(),
                            want.data_f32(),
                            "producer {producer} request {i}: bits differ from reference"
                        );
                    }
                }
                retries
            })
        })
        .collect();

    let total_retries: u32 = producers.into_iter().map(|p| p.join().unwrap()).sum();
    let stats = server.stats();
    assert_eq!(
        stats.completed,
        (PRODUCERS * requests_per_producer) as u64,
        "every request must be answered; stats: {stats}"
    );
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.rejected as u32, total_retries);
    // With 8 producers hammering 4 workers, at least some requests must have
    // been coalesced (this is statistical but wildly below any realistic run).
    assert!(
        stats.mean_batch_size > 1.0,
        "no micro-batching happened: {stats}"
    );
}
