//! Worker-health watchdog, end to end: a deliberately long single-batch
//! inference trips the stall flag (heartbeats only happen at batch
//! boundaries, so a slow batch *is* a stall at a short deadline), and the
//! worker's next heartbeat clears it.
//!
//! Kept in its own integration-test binary: the stall gauge and counter are
//! process-global.

use mnn_models::{build, ModelKind};
use mnn_serve::{Server, SloConfig};
use mnn_tensor::{Shape, Tensor};
use std::time::{Duration, Instant};

/// Big enough that one debug-build inference takes far longer than the
/// watchdog deadline below; heartbeats cannot refresh mid-batch.
const STALL_PIXELS: usize = 192;

#[test]
fn slow_batch_trips_the_watchdog_and_recovers() {
    let server = Server::builder()
        .workers(1)
        .max_batch(1)
        .watchdog_deadline(Duration::from_millis(5))
        .slo(SloConfig {
            latency_p99_ms: 1e9, // never violated; presence is what's tested
            availability: 0.5,
        })
        .build(build(ModelKind::TinyCnn, 1, STALL_PIXELS))
        .expect("server builds");

    let input = Tensor::zeros(Shape::nchw(1, 3, STALL_PIXELS, STALL_PIXELS));
    let handle = server.submit(&[("data", &input)]).expect("submitted");

    // The watchdog samples every ~1-2 ms; the stall must be flagged while
    // the inference is still running.
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut stalled_stats = None;
    while Instant::now() < deadline {
        if server.stalled_workers() > 0 {
            stalled_stats = Some(server.stats());
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let stalled_stats = stalled_stats.expect("watchdog flagged the slow batch");
    assert_eq!(stalled_stats.stalled_workers, 1);
    assert_eq!(stalled_stats.worker_states, vec!["running".to_string()]);

    handle.wait().expect("inference still completes");

    // Recovery: the worker heartbeats at the next batch boundary, clearing
    // the flag without any watchdog involvement.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stalled_workers() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let stats = server.stats();
    assert_eq!(stats.stalled_workers, 0, "stall flag clears on heartbeat");
    assert_eq!(stats.worker_states, vec!["idle".to_string()]);

    // The SLO tracker saw the request and (with an absurd latency objective)
    // reports full compliance.
    let slo = stats.slo.expect("SLO configured at build time");
    assert_eq!(slo.requests, 1);
    assert_eq!(slo.errors, 0);
    assert!(slo.latency_compliant, "{slo:?}");
    assert!(slo.availability_compliant, "{slo:?}");
    assert_eq!(slo.availability_burn_rate, 0.0);

    server.shutdown();
}

#[test]
fn fast_batches_never_trip_a_generous_watchdog() {
    let server = Server::builder()
        .workers(2)
        .max_batch(2)
        .watchdog_deadline(Duration::from_secs(30))
        .build(build(ModelKind::TinyCnn, 1, 16))
        .expect("server builds");
    let input = Tensor::zeros(Shape::nchw(1, 3, 16, 16));
    for _ in 0..8 {
        server.infer(&[("data", &input)]).expect("served");
        assert_eq!(server.stalled_workers(), 0);
    }
    let stats = server.stats();
    assert_eq!(stats.stalled_workers, 0);
    assert_eq!(stats.worker_states.len(), 2);
    assert!(stats.slo.is_none(), "no SLO configured");
    server.shutdown();
}
