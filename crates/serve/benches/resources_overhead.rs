//! Memory-accounting overhead guard
//! (`cargo bench -p mnn-serve --bench resources_overhead`).
//!
//! The resource ledger's hot path is the plan swap: every `resize_session`
//! that hits the plan cache re-points the session's arena account at the new
//! plan's bytes (one relaxed atomic store) and moves the parked plan's bytes
//! between the arena and plan-cache accounts. This bench flip-flops a
//! session between two cached geometries — the fastest resize the engine can
//! do, so accounting cost has nowhere to hide — with accounting on vs off,
//! and **asserts** the ratio so a regression that drags a lock or a snapshot
//! into the swap fails CI instead of taxing every shape change.

use mnn_core::{Interpreter, Session, SessionConfig};
use mnn_models::{build, ModelKind};
use mnn_tensor::Shape;
use std::time::Instant;

const SMALL: usize = 16;
const LARGE: usize = 24;

fn make_session(accounted: bool) -> Session {
    let mut config = SessionConfig::cpu(1);
    config.account_resources = accounted;
    if accounted {
        config.resource_scope = Some("resources-overhead-bench".to_string());
    }
    Interpreter::from_graph(build(ModelKind::TinyCnn, 1, SMALL))
        .expect("zoo graph is valid")
        .create_session(config)
        .expect("session builds")
}

fn flip(session: &mut Session, size: usize) {
    session
        .resize_input("data", Shape::nchw(1, 3, size, size))
        .expect("known input");
    session.resize_session().expect("resize succeeds");
}

/// Mean wall time per resize over `iters` small↔large round trips, after
/// warming the plan cache so every resize is a cache-hit swap.
fn mean_swap_ns(session: &mut Session, iters: usize) -> f64 {
    for size in [LARGE, SMALL, LARGE, SMALL] {
        flip(session, size);
    }
    assert!(
        session.plan_cache_hits() > 0,
        "warm-up must hit the plan cache"
    );
    let start = Instant::now();
    for _ in 0..iters {
        flip(session, LARGE);
        flip(session, SMALL);
    }
    start.elapsed().as_secs_f64() * 1e9 / (2 * iters) as f64
}

fn main() {
    let mut plain = make_session(false);
    let mut accounted = make_session(true);

    const ITERS: usize = 50;
    // Timing on shared CI machines is noisy; accept the best of several
    // attempts before declaring a regression, interleaving the measurements
    // so frequency scaling hits both sessions equally.
    let mut best_ratio = f64::INFINITY;
    for _ in 0..5 {
        let base = mean_swap_ns(&mut plain, ITERS);
        let with = mean_swap_ns(&mut accounted, ITERS);
        best_ratio = best_ratio.min(with / base);
        if best_ratio <= 1.10 {
            break;
        }
    }

    // The accounted arm must actually have exercised the ledger, and the
    // unaccounted arm must have stayed out of it entirely.
    let scope = mnn_obs::resources::scope_snapshot("resources-overhead-bench");
    assert!(
        scope.resident_bytes > 0,
        "accounted session left no trace in the ledger"
    );

    assert!(
        best_ratio <= 1.25,
        "memory accounting costs {:.1}% per plan swap — the hot path must stay \
         a handful of atomic stores",
        (best_ratio - 1.0) * 100.0
    );
    println!("accounting overhead: best ratio {best_ratio:.3} (<= 1.25 required)");
}
