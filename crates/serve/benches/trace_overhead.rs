//! Tracing-off overhead guard (`cargo bench -p mnn-serve --bench trace_overhead`).
//!
//! The flight recorder's contract mirrors the profiler's: a server with a
//! *disabled* recorder attached must serve exactly as fast as a server with
//! no recorder at all — `begin_owned_trace_at` bails after one relaxed
//! atomic load, so the request path takes no tracing timestamps. This bench
//! times both end to end (submit → batch → inference → response) and
//! **asserts** the ratio, so a regression that sneaks always-on tracing work
//! into the serving path fails CI instead of silently taxing every request.

use mnn_models::{build, ModelKind};
use mnn_serve::{FlightRecorder, Server};
use mnn_tensor::{Shape, Tensor};
use std::sync::Arc;
use std::time::Instant;

fn make_server(recorder: Option<Arc<FlightRecorder>>) -> Server {
    let mut builder = Server::builder().workers(1).max_batch(1);
    if let Some(recorder) = recorder {
        builder = builder.trace_recorder(recorder);
    }
    builder
        .build(build(ModelKind::TinyCnn, 1, 16))
        .expect("server builds")
}

/// Mean wall time per request over `iters` blocking inferences (after
/// warm-up).
fn mean_infer_ns(server: &Server, input: &Tensor, iters: usize) -> f64 {
    for _ in 0..10 {
        std::hint::black_box(server.infer(&[("data", input)]).unwrap());
    }
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(server.infer(&[("data", input)]).unwrap());
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn main() {
    let input = Tensor::full(Shape::nchw(1, 3, 16, 16), 0.5);
    let plain = make_server(None);
    let recorder = Arc::new(FlightRecorder::new());
    recorder.set_enabled(false);
    let attached = make_server(Some(Arc::clone(&recorder)));

    const ITERS: usize = 50;
    // Timing on shared CI machines is noisy; accept the best of several
    // attempts before declaring a regression, interleaving the measurements
    // so frequency scaling hits both servers equally.
    let mut best_ratio = f64::INFINITY;
    for _ in 0..5 {
        let base = mean_infer_ns(&plain, &input, ITERS);
        let off = mean_infer_ns(&attached, &input, ITERS);
        best_ratio = best_ratio.min(off / base);
        if best_ratio <= 1.10 {
            break;
        }
    }
    assert_eq!(
        recorder.completed(),
        0,
        "disabled recorder must record nothing"
    );
    assert!(
        best_ratio <= 1.25,
        "disabled tracing costs {:.1}% per request — the off path must stay free",
        (best_ratio - 1.0) * 100.0
    );
    println!("tracing-off overhead: best ratio {best_ratio:.3} (<= 1.25 required)");
}
