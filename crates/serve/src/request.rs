//! Queued requests, compatibility signatures and response handles.

use crate::ServeError;
use mnn_tensor::{DataLayout, DataType, Tensor};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

/// The result delivered to one request.
pub(crate) type Response = Result<Vec<Tensor>, ServeError>;

/// What makes two requests batchable together: identical input names, shapes,
/// data types and layouts (in normalized name order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Signature(Vec<(String, Vec<usize>, DataType, DataLayout)>);

impl Signature {
    /// Build the signature of a normalized (name-sorted) input list.
    pub(crate) fn of(inputs: &[(String, Tensor)]) -> Self {
        Signature(
            inputs
                .iter()
                .map(|(name, t)| {
                    (
                        name.clone(),
                        t.shape().dims().to_vec(),
                        t.data_type(),
                        t.layout(),
                    )
                })
                .collect(),
        )
    }
}

/// One request waiting in (or drained from) the queue.
pub(crate) struct QueuedRequest {
    /// Normalized inputs: sorted by input name.
    pub(crate) inputs: Vec<(String, Tensor)>,
    pub(crate) signature: Signature,
    /// Whether this request can join a micro-batch: every input is 4-D with a
    /// leading batch dimension of 1.
    pub(crate) batchable: bool,
    pub(crate) slot: Arc<ResponseSlot>,
    pub(crate) enqueued: Instant,
    /// Stamped by the queue the moment a worker takes the request (head pop
    /// or window drain). `enqueued → dequeued` is the queue-wait stage;
    /// `dequeued → inference start` is the batch-assembly stage.
    pub(crate) dequeued: Option<Instant>,
    /// The request's trace, when tracing is enabled. Rides the request across
    /// threads so the batch worker can attribute stages to it.
    pub(crate) trace: Option<mnn_obs::ActiveTrace>,
}

/// Lifecycle of a [`ResponseSlot`].
enum SlotState {
    /// No worker has answered yet.
    Pending,
    /// The response is stored, waiting to be consumed.
    Ready(Response),
    /// `wait()` moved the response out.
    Taken,
}

/// Shared one-shot slot a worker fills and a waiter blocks on.
pub(crate) struct ResponseSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl ResponseSlot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ResponseSlot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        })
    }

    /// Fill the slot and wake the waiter. Later fills are ignored (first write
    /// wins), so error fan-out paths never clobber a delivered result.
    pub(crate) fn fulfill(&self, response: Response) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Ready(response);
            self.ready.notify_all();
        }
    }

    /// Move the response out (no tensor copy — `wait` consumes the handle, so
    /// there is exactly one consumer).
    fn wait(&self) -> Response {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if matches!(*state, SlotState::Ready(_)) {
                match std::mem::replace(&mut *state, SlotState::Taken) {
                    SlotState::Ready(response) => return response,
                    _ => unreachable!("matched Ready above"),
                }
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn try_wait(&self) -> Option<Response> {
        match &*self.state.lock().unwrap_or_else(PoisonError::into_inner) {
            SlotState::Ready(response) => Some(response.clone()),
            _ => None,
        }
    }
}

/// Handle to an in-flight request returned by [`Server::submit`](crate::Server::submit).
///
/// The handle is `Send`, so a request can be submitted on one thread and
/// awaited on another. Dropping the handle abandons the response (the
/// inference still runs; its result is discarded).
pub struct ResponseHandle {
    slot: Arc<ResponseSlot>,
}

impl ResponseHandle {
    pub(crate) fn new(slot: Arc<ResponseSlot>) -> Self {
        ResponseHandle { slot }
    }

    /// Block until the response is ready and return the outputs in
    /// graph-output order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Inference`] when the batched inference failed and
    /// [`ServeError::ShuttingDown`] when the server stopped before serving the
    /// request.
    pub fn wait(self) -> Result<Vec<Tensor>, ServeError> {
        self.slot.wait()
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<Vec<Tensor>, ServeError>> {
        self.slot.try_wait()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnn_tensor::Shape;

    fn named(name: &str, shape: Shape) -> (String, Tensor) {
        (name.to_string(), Tensor::zeros(shape))
    }

    #[test]
    fn signatures_distinguish_shapes() {
        let a = Signature::of(&[named("x", Shape::nchw(1, 3, 8, 8))]);
        let b = Signature::of(&[named("x", Shape::nchw(1, 3, 8, 8))]);
        let c = Signature::of(&[named("x", Shape::nchw(1, 3, 16, 16))]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn slot_first_write_wins_and_wakes_waiter() {
        let slot = ResponseSlot::new();
        assert!(slot.try_wait().is_none());
        slot.fulfill(Ok(vec![]));
        slot.fulfill(Err(ServeError::ShuttingDown)); // ignored
        let handle = ResponseHandle::new(slot);
        assert_eq!(handle.try_wait(), Some(Ok(vec![])));
        assert_eq!(handle.wait(), Ok(vec![]));
    }

    #[test]
    fn wait_blocks_until_fulfilled_across_threads() {
        let slot = ResponseSlot::new();
        let handle = ResponseHandle::new(Arc::clone(&slot));
        let waiter = std::thread::spawn(move || handle.wait());
        std::thread::sleep(std::time::Duration::from_millis(10));
        slot.fulfill(Ok(vec![Tensor::zeros(Shape::vector(2))]));
        let out = waiter.join().unwrap().unwrap();
        assert_eq!(out[0].shape().dims(), &[2]);
    }
}
