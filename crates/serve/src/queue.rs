//! The bounded MPMC request queue and the micro-batch collection policy.
//!
//! Producers push through [`RequestQueue::try_push`], which applies
//! **backpressure**: when the queue holds `capacity` requests the push fails
//! with [`ServeError::QueueFull`] instead of blocking or buffering without
//! bound. Workers pull through [`RequestQueue::next_batch`], which implements
//! **dynamic micro-batching**: after taking one request it keeps draining
//! *compatible* requests (same [`Signature`](crate::request::Signature), batchable) —
//! waiting up to the batch window for more to arrive — until the batch is full
//! or the deadline passes.

use crate::request::{QueuedRequest, Signature};
use crate::ServeError;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

struct QueueState {
    deque: VecDeque<QueuedRequest>,
    closed: bool,
}

/// Bounded multi-producer/multi-consumer queue of pending requests.
pub(crate) struct RequestQueue {
    state: Mutex<QueueState>,
    /// Signaled on push and on close.
    nonempty: Condvar,
    capacity: usize,
    /// Process-wide `mnn_queue_depth` gauge. Updated with add/sub (not `set`)
    /// so the queues of several model servers compose into one total.
    depth_gauge: mnn_obs::Gauge,
}

impl RequestQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        RequestQueue {
            state: Mutex::new(QueueState {
                deque: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity,
            depth_gauge: mnn_obs::global().gauge(
                mnn_obs::metrics::names::QUEUE_DEPTH,
                "Requests currently waiting in serve queues.",
            ),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueue a request, failing fast when the server is stopping or the
    /// queue is at capacity.
    pub(crate) fn try_push(&self, request: QueuedRequest) -> Result<(), ServeError> {
        let mut state = self.lock();
        if state.closed {
            return Err(ServeError::ShuttingDown);
        }
        if state.deque.len() >= self.capacity {
            return Err(ServeError::QueueFull {
                capacity: self.capacity,
            });
        }
        state.deque.push_back(request);
        // Gauge updates happen under the queue lock (here and at every
        // removal site) so `mnn_queue_depth` tracks the deque exactly: no
        // interleaving can leave it transiently negative or non-zero after a
        // drain. A relaxed atomic under a held mutex costs nothing.
        self.depth_gauge.add(1.0);
        drop(state);
        // notify_all, not notify_one: a worker coalescing a batch waits on this
        // same condvar, and waking only *it* for an incompatible request would
        // leave an idle worker asleep while the request sits queued.
        self.nonempty.notify_all();
        Ok(())
    }

    /// Cheap pre-admission check so `submit` can reject on backpressure before
    /// paying to clone the request's tensors. Racy by design — `try_push` makes
    /// the authoritative decision under the same lock.
    pub(crate) fn check_admission(&self) -> Result<(), ServeError> {
        let state = self.lock();
        if state.closed {
            return Err(ServeError::ShuttingDown);
        }
        if state.deque.len() >= self.capacity {
            return Err(ServeError::QueueFull {
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    /// Number of requests currently waiting.
    pub(crate) fn depth(&self) -> usize {
        self.lock().deque.len()
    }

    /// Close the queue: wake every worker; pending requests are still drained
    /// and served before workers exit.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.nonempty.notify_all();
    }

    /// Close the queue AND evict every request still waiting, returning them so
    /// the caller can fail their response slots. Workers that already pulled a
    /// batch finish it; nothing else will be executed.
    pub(crate) fn abort(&self) -> Vec<QueuedRequest> {
        let mut state = self.lock();
        state.closed = true;
        let abandoned: Vec<QueuedRequest> = state.deque.drain(..).collect();
        self.depth_gauge.sub(abandoned.len() as f64);
        drop(state);
        self.nonempty.notify_all();
        abandoned
    }

    /// Take the next micro-batch, blocking while the queue is empty and open.
    ///
    /// Returns `None` once the queue is closed *and* empty (worker shutdown).
    /// Otherwise the batch holds 1..=`max_batch` requests sharing one
    /// signature. A non-batchable head request (or `max_batch == 1`) is
    /// returned alone; a batchable head opens a window of `batch_window` in
    /// which compatible requests are coalesced as they arrive, skipping over
    /// incompatible ones (those stay queued for other workers).
    #[cfg_attr(not(test), allow(dead_code))] // workers use the observed variant
    pub(crate) fn next_batch(
        &self,
        max_batch: usize,
        batch_window: Duration,
    ) -> Option<Vec<QueuedRequest>> {
        self.next_batch_observed(max_batch, batch_window, None)
    }

    /// [`RequestQueue::next_batch`] with worker-health observation: once a
    /// head request is taken, the worker's slot is stamped *batching* (and
    /// heartbeaten) so the watchdog can tell a worker coalescing a window
    /// from one idling on an empty queue.
    pub(crate) fn next_batch_observed(
        &self,
        max_batch: usize,
        batch_window: Duration,
        health: Option<&crate::health::WorkerSlot>,
    ) -> Option<Vec<QueuedRequest>> {
        let mut state = self.lock();
        let first = loop {
            if let Some(mut request) = state.deque.pop_front() {
                // Depth decrements happen at the removal site, under the
                // lock, so the gauge mirrors the deque exactly (see
                // `try_push`).
                self.depth_gauge.sub(1.0);
                request.dequeued = Some(Instant::now());
                break request;
            }
            if state.closed {
                return None;
            }
            state = self
                .nonempty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        };
        if let Some(slot) = health {
            slot.beat(crate::health::WorkerState::Batching);
        }

        let mut batch = vec![first];
        if max_batch <= 1 || !batch[0].batchable {
            return Some(batch);
        }
        let signature = batch[0].signature.clone();
        let deadline = Instant::now() + batch_window;
        loop {
            let before = batch.len();
            drain_compatible(&mut state.deque, &signature, max_batch, &mut batch);
            self.depth_gauge.sub((batch.len() - before) as f64);
            if batch.len() >= max_batch || state.closed {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timeout) = self
                .nonempty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if timeout.timed_out() {
                let before = batch.len();
                drain_compatible(&mut state.deque, &signature, max_batch, &mut batch);
                self.depth_gauge.sub((batch.len() - before) as f64);
                break;
            }
        }
        Some(batch)
    }
}

/// Move every queued request compatible with `signature` into `batch`, up to
/// `max_batch` total, preserving arrival order of the rest.
fn drain_compatible(
    deque: &mut VecDeque<QueuedRequest>,
    signature: &Signature,
    max_batch: usize,
    batch: &mut Vec<QueuedRequest>,
) {
    let mut index = 0;
    while index < deque.len() && batch.len() < max_batch {
        let compatible = deque[index].batchable && &deque[index].signature == signature;
        if compatible {
            // `remove` keeps the relative order of the remaining requests.
            let mut request = deque.remove(index).expect("index bounded by len");
            request.dequeued = Some(Instant::now());
            batch.push(request);
        } else {
            index += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ResponseSlot;
    use mnn_tensor::{Shape, Tensor};

    fn request(size: usize, batchable: bool) -> QueuedRequest {
        let shape = if batchable {
            Shape::nchw(1, 3, size, size)
        } else {
            Shape::matrix(size, size)
        };
        let inputs = vec![("x".to_string(), Tensor::zeros(shape))];
        let signature = Signature::of(&inputs);
        QueuedRequest {
            inputs,
            signature,
            batchable,
            slot: ResponseSlot::new(),
            enqueued: Instant::now(),
            dequeued: None,
            trace: None,
        }
    }

    #[test]
    fn next_batch_stamps_dequeue_time_on_every_member() {
        let queue = RequestQueue::new(16);
        for _ in 0..3 {
            queue.try_push(request(8, true)).unwrap();
        }
        let batch = queue.next_batch(4, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 3);
        for member in &batch {
            let dequeued = member.dequeued.expect("queue stamps dequeue time");
            assert!(dequeued >= member.enqueued);
        }
    }

    #[test]
    fn push_applies_backpressure_at_capacity() {
        let queue = RequestQueue::new(2);
        queue.try_push(request(8, true)).unwrap();
        queue.try_push(request(8, true)).unwrap();
        assert_eq!(
            queue.try_push(request(8, true)),
            Err(ServeError::QueueFull { capacity: 2 })
        );
        assert_eq!(queue.depth(), 2);
    }

    #[test]
    fn push_after_close_is_rejected() {
        let queue = RequestQueue::new(4);
        queue.close();
        assert_eq!(
            queue.try_push(request(8, true)),
            Err(ServeError::ShuttingDown)
        );
    }

    #[test]
    fn next_batch_coalesces_compatible_requests() {
        let queue = RequestQueue::new(16);
        for _ in 0..3 {
            queue.try_push(request(8, true)).unwrap();
        }
        let batch = queue
            .next_batch(4, Duration::from_millis(1))
            .expect("queue open");
        assert_eq!(batch.len(), 3);
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn next_batch_respects_max_batch() {
        let queue = RequestQueue::new(16);
        for _ in 0..6 {
            queue.try_push(request(8, true)).unwrap();
        }
        let batch = queue.next_batch(4, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(queue.depth(), 2);
    }

    #[test]
    fn incompatible_requests_stay_queued() {
        let queue = RequestQueue::new(16);
        queue.try_push(request(8, true)).unwrap();
        queue.try_push(request(16, true)).unwrap(); // different geometry
        queue.try_push(request(8, true)).unwrap(); // compatible with head
        let batch = queue.next_batch(4, Duration::ZERO).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(queue.depth(), 1); // the 16x16 request waits its turn
        let next = queue.next_batch(4, Duration::ZERO).unwrap();
        assert_eq!(next[0].signature, Signature::of(&next[0].inputs));
        assert_eq!(next.len(), 1);
    }

    #[test]
    fn non_batchable_head_is_served_alone() {
        let queue = RequestQueue::new(16);
        queue.try_push(request(4, false)).unwrap();
        queue.try_push(request(4, false)).unwrap();
        let batch = queue.next_batch(4, Duration::from_millis(5)).unwrap();
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn abort_evicts_queued_requests_and_closes() {
        let queue = RequestQueue::new(8);
        queue.try_push(request(8, true)).unwrap();
        queue.try_push(request(8, true)).unwrap();
        let abandoned = queue.abort();
        assert_eq!(abandoned.len(), 2);
        assert_eq!(queue.depth(), 0);
        assert!(queue.next_batch(4, Duration::ZERO).is_none());
        assert_eq!(
            queue.try_push(request(8, true)),
            Err(ServeError::ShuttingDown)
        );
    }

    #[test]
    fn closed_empty_queue_releases_workers() {
        let queue = RequestQueue::new(4);
        queue.close();
        assert!(queue.next_batch(4, Duration::ZERO).is_none());
    }

    #[test]
    fn batch_window_picks_up_late_arrivals() {
        let queue = std::sync::Arc::new(RequestQueue::new(16));
        queue.try_push(request(8, true)).unwrap();
        let late = {
            let queue = std::sync::Arc::clone(&queue);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                queue.try_push(request(8, true)).unwrap();
            })
        };
        let batch = queue.next_batch(2, Duration::from_millis(250)).unwrap();
        late.join().unwrap();
        // The second request arrived inside the window and filled the batch.
        assert_eq!(batch.len(), 2);
    }
}
