//! # mnn-serve — a concurrent serving runtime for the MNN-rs engine
//!
//! The paper (Section 3.3) treats multi-threading and pre-inference as
//! schedule-level optimizations for a *single* request; this crate turns those
//! primitives into a throughput-oriented serving runtime:
//!
//! * **Session pooling** — a [`Server`] pre-warms one
//!   [`Session`](mnn_core::Session) per worker thread from a shared graph
//!   (weights are `Arc`-shared, pre-inference runs once per worker at startup,
//!   never per request).
//! * **Bounded queue with backpressure** — [`Server::submit`] enqueues onto a
//!   bounded MPMC queue and fails fast with [`ServeError::QueueFull`] instead
//!   of buffering without bound; callers back off and retry.
//! * **Dynamic micro-batching** — a worker holding a request waits up to a
//!   configurable window for more requests with the *same input signature*,
//!   stacks up to `max_batch` of them along the batch dimension
//!   ([`Tensor::stack_batch`](mnn_tensor::Tensor::stack_batch)), runs **one**
//!   inference, and scatters the outputs back to per-request handles
//!   ([`Tensor::split_batch`](mnn_tensor::Tensor::split_batch)). Each batch
//!   size is one input geometry, so the session's per-signature plan cache
//!   turns the batched `resize_session` into an O(1) plan swap after first
//!   sight. Batching amortizes per-run bookkeeping and per-kernel thread
//!   fan-out; every sample is still computed independently, so responses stay
//!   **bit-identical** to unbatched inference.
//! * **Observability** — [`Server::stats`] snapshots throughput, latency
//!   percentiles (p50/p99), queue-wait and batch-assembly percentiles, the
//!   batch-size histogram and queue depth as a [`ServerStats`]. With a
//!   [`FlightRecorder`] attached ([`ServerBuilder::trace_recorder`]) every
//!   request carries an [`ActiveTrace`]: the queue stamps queue-wait, the
//!   batcher attributes batch-assembly / inference / scatter stage spans plus
//!   a batch link naming its co-batched peers, and per-op kernel spans nest
//!   under the inference stage — the per-request waterfall served by
//!   `mnn-http` at `GET /v1/traces`.
//!
//! # Example
//!
//! ```
//! use mnn_serve::Server;
//! use mnn_models::{build, ModelKind};
//! use mnn_tensor::{Shape, Tensor};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::builder()
//!     .workers(2)
//!     .max_batch(4)
//!     .batch_window(Duration::from_millis(1))
//!     .build(build(ModelKind::TinyCnn, 1, 16))?;
//!
//! // Blocking call:
//! let input = Tensor::zeros(Shape::nchw(1, 3, 16, 16));
//! let outputs = server.infer(&[("data", &input)])?;
//! assert_eq!(outputs[0].shape().dims(), &[1, 10]);
//!
//! // Handle-based: submit many, wait later.
//! let handles: Vec<_> = (0..8)
//!     .map(|_| server.submit(&[("data", &input)]))
//!     .collect::<Result<_, _>>()?;
//! for handle in handles {
//!     handle.wait()?;
//! }
//! println!("{}", server.stats());
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod batcher;
mod error;
mod health;
mod queue;
mod request;
mod server;
mod stats;

pub use error::ServeError;
pub use health::WorkerState;
pub use request::ResponseHandle;
pub use server::{DrainReport, Server, ServerBuilder};
pub use stats::ServerStats;

pub use mnn_obs::{
    ActiveTrace, FlightRecorder, RequestTrace, SloConfig, SloSnapshot, SloTracker, TraceContext,
};
