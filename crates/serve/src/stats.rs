//! Server telemetry: counters, latency percentiles and the batch-size histogram.

use crate::health::WorkerHealth;
use mnn_obs::{SloSnapshot, SloTracker};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Most recent per-request latencies retained for percentile estimation. A
/// bounded ring keeps the snapshot O(1) in memory under sustained traffic and
/// biases percentiles toward *current* behavior rather than startup noise.
const LATENCY_WINDOW: usize = 16_384;

struct StatsInner {
    submitted: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    /// Queued requests failed with `ShuttingDown` when a drain deadline evicted
    /// them.
    aborted: u64,
    /// Worker panics contained by the batch loop / joined at shutdown.
    worker_panics: u64,
    /// Per-request end-to-end latencies (enqueue → response), milliseconds.
    latencies_ms: VecDeque<f64>,
    /// Per-request queue wait (enqueue → dequeue), milliseconds.
    queue_wait_ms: VecDeque<f64>,
    /// Per-request batch assembly (dequeue → inference start), milliseconds.
    batch_assembly_ms: VecDeque<f64>,
    /// `batch_histogram[k - 1]` counts executed batches of size `k`.
    batch_histogram: Vec<u64>,
}

/// Handles into the process-wide `mnn_obs` registry, registered once per
/// server so the per-request path never touches the registry lock. These are
/// *global* series: several servers (one per model) accumulate together.
struct GlobalMetrics {
    requests: mnn_obs::Counter,
    completed: mnn_obs::Counter,
    errors: mnn_obs::Counter,
    rejected: mnn_obs::Counter,
    aborted: mnn_obs::Counter,
    worker_panics: mnn_obs::Counter,
    latency_ms: mnn_obs::Histogram,
    batch_size: mnn_obs::Histogram,
    queue_wait_ms: mnn_obs::Histogram,
    batch_assembly_ms: mnn_obs::Histogram,
    traces: mnn_obs::Counter,
}

impl GlobalMetrics {
    fn register() -> Self {
        use mnn_obs::metrics::names;
        let global = mnn_obs::global();
        GlobalMetrics {
            requests: global.counter(
                names::INFER_REQUESTS,
                "Requests accepted into a serve queue.",
            ),
            completed: global.counter(names::INFER_COMPLETED, "Requests answered successfully."),
            errors: global.counter(
                names::INFER_ERRORS,
                "Requests answered with an inference error.",
            ),
            rejected: global.counter(
                names::INFER_REJECTED,
                "Submissions rejected with QueueFull backpressure.",
            ),
            aborted: global.counter(
                names::INFER_ABORTED,
                "Queued requests failed with ShuttingDown at drain eviction.",
            ),
            worker_panics: global.counter(
                names::WORKER_PANICS,
                "Worker panics contained by the serving runtime.",
            ),
            latency_ms: global.histogram(
                names::INFER_LATENCY_MS,
                "End-to-end request latency (enqueue to response), milliseconds.",
                mnn_obs::metrics::LATENCY_MS_BUCKETS,
            ),
            batch_size: global.histogram(
                names::BATCH_SIZE,
                "Executed micro-batch sizes.",
                mnn_obs::metrics::BATCH_SIZE_BUCKETS,
            ),
            queue_wait_ms: global.histogram(
                names::QUEUE_WAIT_MS,
                "Time requests spent waiting in serve queues, milliseconds.",
                mnn_obs::metrics::LATENCY_MS_BUCKETS,
            ),
            batch_assembly_ms: global.histogram(
                names::BATCH_ASSEMBLY_MS,
                "Time from dequeue to inference start (stacking, geometry), milliseconds.",
                mnn_obs::metrics::LATENCY_MS_BUCKETS,
            ),
            traces: global.counter(
                names::TRACES_RECORDED,
                "Request traces completed by the flight recorder.",
            ),
        }
    }
}

/// Thread-safe collector the server and its workers write into.
pub(crate) struct StatsCollector {
    inner: Mutex<StatsInner>,
    metrics: GlobalMetrics,
    started: Instant,
    /// Attached SLO tracker; every batch member's latency/outcome feeds it.
    slo: Option<Arc<SloTracker>>,
}

impl StatsCollector {
    pub(crate) fn new(max_batch: usize, slo: Option<Arc<SloTracker>>) -> Self {
        StatsCollector {
            inner: Mutex::new(StatsInner {
                submitted: 0,
                completed: 0,
                failed: 0,
                rejected: 0,
                aborted: 0,
                worker_panics: 0,
                latencies_ms: VecDeque::new(),
                queue_wait_ms: VecDeque::new(),
                batch_assembly_ms: VecDeque::new(),
                batch_histogram: vec![0; max_batch.max(1)],
            }),
            metrics: GlobalMetrics::register(),
            started: Instant::now(),
            slo,
        }
    }

    fn lock(&self) -> MutexGuard<'_, StatsInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn record_submitted(&self) {
        self.lock().submitted += 1;
        self.metrics.requests.inc();
    }

    pub(crate) fn record_rejected(&self) {
        self.lock().rejected += 1;
        self.metrics.rejected.inc();
    }

    /// Record queued requests evicted with `ShuttingDown` at the drain
    /// deadline.
    pub(crate) fn record_aborted(&self, count: usize) {
        self.lock().aborted += count as u64;
        self.metrics.aborted.add(count as u64);
    }

    /// Record one contained worker panic.
    pub(crate) fn record_worker_panic(&self) {
        self.lock().worker_panics += 1;
        self.metrics.worker_panics.inc();
    }

    /// Record one executed batch: its size and each member's latency. A
    /// member with a trace id attaches it as the latency bucket's exemplar,
    /// so `/metrics` points straight at a representative trace.
    pub(crate) fn record_batch(&self, latencies_ms: &[(f64, Option<String>)], ok: bool) {
        let mut inner = self.lock();
        let size = latencies_ms.len();
        if size == 0 {
            return;
        }
        let slot = size.min(inner.batch_histogram.len()) - 1;
        inner.batch_histogram[slot] += 1;
        if ok {
            inner.completed += size as u64;
            self.metrics.completed.add(size as u64);
        } else {
            inner.failed += size as u64;
            self.metrics.errors.add(size as u64);
        }
        self.metrics.batch_size.observe(size as f64);
        for (latency, trace_id) in latencies_ms {
            if inner.latencies_ms.len() == LATENCY_WINDOW {
                inner.latencies_ms.pop_front();
            }
            inner.latencies_ms.push_back(*latency);
            match trace_id {
                Some(id) => self.metrics.latency_ms.observe_with_exemplar(*latency, id),
                None => self.metrics.latency_ms.observe(*latency),
            }
        }
        drop(inner);
        if let Some(slo) = &self.slo {
            for (latency, _) in latencies_ms {
                slo.record(*latency, ok);
            }
        }
    }

    /// Record one request's queue-wait and batch-assembly stages (derived
    /// from the queue's dequeue stamp, so they exist with tracing off too).
    pub(crate) fn record_stage_waits(
        &self,
        queue_wait_ms: f64,
        batch_assembly_ms: f64,
        trace_id: Option<&str>,
    ) {
        let mut inner = self.lock();
        if inner.queue_wait_ms.len() == LATENCY_WINDOW {
            inner.queue_wait_ms.pop_front();
        }
        inner.queue_wait_ms.push_back(queue_wait_ms);
        if inner.batch_assembly_ms.len() == LATENCY_WINDOW {
            inner.batch_assembly_ms.pop_front();
        }
        inner.batch_assembly_ms.push_back(batch_assembly_ms);
        drop(inner);
        match trace_id {
            Some(id) => {
                self.metrics
                    .queue_wait_ms
                    .observe_with_exemplar(queue_wait_ms, id);
                self.metrics
                    .batch_assembly_ms
                    .observe_with_exemplar(batch_assembly_ms, id);
            }
            None => {
                self.metrics.queue_wait_ms.observe(queue_wait_ms);
                self.metrics.batch_assembly_ms.observe(batch_assembly_ms);
            }
        }
    }

    /// Count one request trace sealed into the flight recorder.
    pub(crate) fn record_trace_finished(&self) {
        self.metrics.traces.inc();
    }

    pub(crate) fn snapshot(
        &self,
        queue_depth: usize,
        workers: usize,
        health: Option<&WorkerHealth>,
    ) -> ServerStats {
        let inner = self.lock();
        let uptime_ms = self.started.elapsed().as_secs_f64() * 1000.0;
        let mut sorted: Vec<f64> = inner.latencies_ms.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let mut queue_wait: Vec<f64> = inner.queue_wait_ms.iter().copied().collect();
        queue_wait.sort_by(|a, b| a.partial_cmp(b).expect("waits are finite"));
        let mut assembly: Vec<f64> = inner.batch_assembly_ms.iter().copied().collect();
        assembly.sort_by(|a, b| a.partial_cmp(b).expect("waits are finite"));
        let batches: u64 = inner.batch_histogram.iter().sum();
        let batched_requests: u64 = inner
            .batch_histogram
            .iter()
            .enumerate()
            .map(|(i, &count)| (i as u64 + 1) * count)
            .sum();
        ServerStats {
            workers,
            submitted: inner.submitted,
            completed: inner.completed,
            failed: inner.failed,
            rejected: inner.rejected,
            aborted: inner.aborted,
            worker_panics: inner.worker_panics,
            queue_depth,
            uptime_ms,
            uptime_seconds: uptime_ms / 1000.0,
            throughput_rps: if uptime_ms > 0.0 {
                inner.completed as f64 / (uptime_ms / 1000.0)
            } else {
                0.0
            },
            mean_latency_ms: mean(&sorted),
            p50_latency_ms: percentile(&sorted, 50.0),
            p99_latency_ms: percentile(&sorted, 99.0),
            queue_wait_p50_ms: percentile(&queue_wait, 50.0),
            queue_wait_p99_ms: percentile(&queue_wait, 99.0),
            batch_assembly_p50_ms: percentile(&assembly, 50.0),
            batch_assembly_p99_ms: percentile(&assembly, 99.0),
            mean_batch_size: if batches > 0 {
                batched_requests as f64 / batches as f64
            } else {
                0.0
            },
            batch_histogram: inner
                .batch_histogram
                .iter()
                .enumerate()
                .filter(|(_, &count)| count > 0)
                .map(|(i, &count)| (i + 1, count))
                .collect(),
            stalled_workers: health.map_or(0, WorkerHealth::stalled_count),
            worker_states: health.map_or_else(Vec::new, |h| {
                h.states().iter().map(|s| s.as_str().to_string()).collect()
            }),
            slo: self.slo.as_ref().map(|tracker| tracker.snapshot()),
        }
    }
}

fn mean(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A point-in-time snapshot of server behavior, returned by
/// [`Server::stats`](crate::Server::stats).
///
/// The struct is `serde::Serialize`, and the serialized field set is part of
/// the `/v1/models/{name}/stats` HTTP contract — a unit test pins the exact
/// JSON shape so it cannot drift silently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an inference error.
    pub failed: u64,
    /// Submissions refused with [`ServeError::QueueFull`](crate::ServeError::QueueFull).
    ///
    /// Cumulative since startup — together with [`ServerStats::failed`]
    /// (inference errors) these are the server's error totals.
    pub rejected: u64,
    /// Queued requests failed with
    /// [`ServeError::ShuttingDown`](crate::ServeError::ShuttingDown) because a
    /// drain deadline evicted them before a worker picked them up.
    pub aborted: u64,
    /// Worker panics contained by the serving runtime (each also fails its
    /// batch, counted under [`ServerStats::failed`]).
    pub worker_panics: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: usize,
    /// Milliseconds since the server started.
    pub uptime_ms: f64,
    /// Seconds since the server started (`uptime_ms / 1000`, for dashboards).
    pub uptime_seconds: f64,
    /// Completed requests per second since startup.
    pub throughput_rps: f64,
    /// Mean end-to-end latency (enqueue → response) over the recent window.
    pub mean_latency_ms: f64,
    /// Median end-to-end latency over the recent window.
    pub p50_latency_ms: f64,
    /// 99th-percentile end-to-end latency over the recent window.
    pub p99_latency_ms: f64,
    /// Median time requests spent waiting in the queue (enqueue → dequeue)
    /// over the recent window, from the tracing stage spans.
    pub queue_wait_p50_ms: f64,
    /// 99th-percentile queue wait over the recent window.
    pub queue_wait_p99_ms: f64,
    /// Median time from dequeue to inference start (batch-window wait,
    /// stacking, geometry) over the recent window — the latency a request
    /// pays for micro-batching.
    pub batch_assembly_p50_ms: f64,
    /// 99th-percentile batch-assembly time over the recent window.
    pub batch_assembly_p99_ms: f64,
    /// Mean number of requests coalesced per executed batch.
    pub mean_batch_size: f64,
    /// `(batch_size, executed_batches)` pairs, ascending, zero entries omitted.
    pub batch_histogram: Vec<(usize, u64)>,
    /// Workers currently flagged stalled by the health watchdog (heartbeat
    /// older than the configured deadline while not idle). Zero on a healthy
    /// server.
    pub stalled_workers: usize,
    /// Every worker's last-stamped state (`"idle"`, `"batching"` or
    /// `"running"`), in worker-index order.
    pub worker_states: Vec<String>,
    /// SLO compliance over the rolling one-hour window, when an
    /// [`SloConfig`](mnn_obs::SloConfig) was attached via
    /// [`ServerBuilder::slo`](crate::ServerBuilder::slo).
    pub slo: Option<SloSnapshot>,
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "workers {} ({} stalled) | submitted {} | completed {} | failed {} | rejected {} \
             | aborted {} | panics {} | queued {}",
            self.workers,
            self.stalled_workers,
            self.submitted,
            self.completed,
            self.failed,
            self.rejected,
            self.aborted,
            self.worker_panics,
            self.queue_depth
        )?;
        writeln!(
            f,
            "throughput {:.1} req/s | latency mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms",
            self.throughput_rps, self.mean_latency_ms, self.p50_latency_ms, self.p99_latency_ms
        )?;
        writeln!(
            f,
            "queue wait p50 {:.3} ms, p99 {:.3} ms | batch assembly p50 {:.3} ms, p99 {:.3} ms",
            self.queue_wait_p50_ms,
            self.queue_wait_p99_ms,
            self.batch_assembly_p50_ms,
            self.batch_assembly_p99_ms
        )?;
        write!(f, "batches (size×count):")?;
        if self.batch_histogram.is_empty() {
            write!(f, " none")?;
        }
        for (size, count) in &self.batch_histogram {
            write!(f, " {size}×{count}")?;
        }
        write!(f, " | mean batch {:.2}", self.mean_batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn batches_feed_histogram_and_counters() {
        let stats = StatsCollector::new(4, None);
        stats.record_submitted();
        stats.record_submitted();
        stats.record_submitted();
        stats.record_batch(&[(1.0, None), (2.0, None)], true);
        stats.record_batch(&[(3.0, None)], true);
        stats.record_batch(&[(4.0, Some("deadbeef".into()))], false);
        let snap = stats.snapshot(5, 2, None);
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.queue_depth, 5);
        assert_eq!(snap.workers, 2);
        assert_eq!(snap.batch_histogram, vec![(1, 2), (2, 1)]);
        assert!((snap.mean_batch_size - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(snap.p50_latency_ms, 2.0);
    }

    #[test]
    fn panics_and_evictions_become_counters() {
        let stats = StatsCollector::new(2, None);
        stats.record_worker_panic();
        stats.record_aborted(3);
        let snap = stats.snapshot(0, 1, None);
        assert_eq!(snap.worker_panics, 1);
        assert_eq!(snap.aborted, 3);
        assert!(snap.uptime_seconds >= 0.0);
        assert!((snap.uptime_seconds - snap.uptime_ms / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn stage_waits_surface_as_percentiles() {
        let stats = StatsCollector::new(4, None);
        for wait in [1.0, 2.0, 3.0, 4.0] {
            stats.record_stage_waits(wait, wait / 10.0, None);
        }
        stats.record_stage_waits(100.0, 10.0, Some("deadbeef"));
        let snap = stats.snapshot(0, 1, None);
        assert_eq!(snap.queue_wait_p50_ms, 3.0);
        assert_eq!(snap.queue_wait_p99_ms, 100.0);
        assert_eq!(snap.batch_assembly_p50_ms, 0.3);
        assert_eq!(snap.batch_assembly_p99_ms, 10.0);
    }

    #[test]
    fn oversized_batches_fold_into_last_bucket() {
        let stats = StatsCollector::new(2, None);
        stats.record_batch(&[(1.0, None), (1.0, None), (1.0, None)], true); // size 3 with max_batch 2
        let snap = stats.snapshot(0, 1, None);
        assert_eq!(snap.batch_histogram, vec![(2, 1)]);
    }

    /// Pins the exact JSON rendering of `ServerStats`. The `/stats` HTTP
    /// endpoint serializes this struct verbatim, so any field rename, reorder
    /// or type change is a wire-format break and must fail here first.
    #[test]
    fn json_shape_is_pinned() {
        let stats = ServerStats {
            workers: 2,
            submitted: 10,
            completed: 8,
            failed: 1,
            rejected: 1,
            aborted: 2,
            worker_panics: 1,
            queue_depth: 3,
            uptime_ms: 1500.0,
            uptime_seconds: 1.5,
            throughput_rps: 5.5,
            mean_latency_ms: 2.25,
            p50_latency_ms: 2.0,
            p99_latency_ms: 4.5,
            queue_wait_p50_ms: 0.5,
            queue_wait_p99_ms: 1.75,
            batch_assembly_p50_ms: 0.25,
            batch_assembly_p99_ms: 0.75,
            mean_batch_size: 1.5,
            batch_histogram: vec![(1, 4), (2, 2)],
            stalled_workers: 1,
            worker_states: vec!["running".into(), "idle".into()],
            slo: None,
        };
        let json = serde_json::to_string(&stats).unwrap();
        assert_eq!(
            json,
            concat!(
                "{\"workers\":2,\"submitted\":10,\"completed\":8,\"failed\":1,",
                "\"rejected\":1,\"aborted\":2,\"worker_panics\":1,",
                "\"queue_depth\":3,\"uptime_ms\":1500.0,\"uptime_seconds\":1.5,",
                "\"throughput_rps\":5.5,\"mean_latency_ms\":2.25,",
                "\"p50_latency_ms\":2.0,\"p99_latency_ms\":4.5,",
                "\"queue_wait_p50_ms\":0.5,\"queue_wait_p99_ms\":1.75,",
                "\"batch_assembly_p50_ms\":0.25,\"batch_assembly_p99_ms\":0.75,",
                "\"mean_batch_size\":1.5,\"batch_histogram\":[[1,4],[2,2]],",
                "\"stalled_workers\":1,\"worker_states\":[\"running\",\"idle\"],",
                "\"slo\":null}"
            )
        );
        let back: ServerStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn display_is_human_readable() {
        let stats = StatsCollector::new(4, None);
        stats.record_batch(&[(1.0, None), (2.0, None), (3.0, None), (4.0, None)], true);
        let text = stats.snapshot(0, 2, None).to_string();
        assert!(text.contains("throughput"));
        assert!(text.contains("queue wait"));
        assert!(text.contains("4×1"));
    }
}
