//! Worker health: per-worker heartbeats, states, and the stall watchdog.
//!
//! Every worker owns a [`WorkerSlot`] it stamps at batch boundaries — idle
//! before blocking on the queue, *batching* once a head request is taken,
//! *running* around the inference — each stamp refreshing a heartbeat
//! timestamp. A watchdog thread (see `Server`) periodically calls
//! [`WorkerHealth::check`]: a worker that is **not idle** and has not
//! heartbeaten within the configured deadline is flagged stalled (counter +
//! gauge + structured warning). The flag clears itself on the worker's next
//! heartbeat, so recovery is observed at the following batch boundary.
//!
//! Idle workers are never flagged: blocking on an empty queue's condvar is
//! the healthy steady state, not a stall.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a worker was last seen doing (stamped at batch boundaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Blocked on the queue waiting for work.
    Idle,
    /// Took a head request and is coalescing its micro-batch window.
    Batching,
    /// Executing a batch.
    Running,
}

impl WorkerState {
    /// Stable lowercase name, as reported in `ServerStats.worker_states`.
    pub fn as_str(self) -> &'static str {
        match self {
            WorkerState::Idle => "idle",
            WorkerState::Batching => "batching",
            WorkerState::Running => "running",
        }
    }

    fn from_u8(value: u8) -> WorkerState {
        match value {
            1 => WorkerState::Batching,
            2 => WorkerState::Running,
            _ => WorkerState::Idle,
        }
    }
}

/// One worker's health cell: state + heartbeat + stall flag. Stamping is a
/// pair of relaxed stores; the watchdog only ever reads.
pub(crate) struct WorkerSlot {
    index: usize,
    state: AtomicU8,
    /// Microseconds since `epoch` of the last heartbeat.
    heartbeat_us: AtomicU64,
    stalled: AtomicBool,
    epoch: Instant,
    stalled_gauge: mnn_obs::Gauge,
    stalls: mnn_obs::Counter,
}

impl WorkerSlot {
    /// Stamp a state transition and refresh the heartbeat. Clears a standing
    /// stall flag — a heartbeat *is* the recovery signal.
    pub(crate) fn beat(&self, state: WorkerState) {
        self.heartbeat_us
            .store(self.epoch.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.state.store(state as u8, Ordering::Relaxed);
        if self.stalled.swap(false, Ordering::AcqRel) {
            self.stalled_gauge.sub(1.0);
            mnn_obs::info!(
                "mnn-serve",
                "worker {} recovered: heartbeat resumed ({})",
                self.index,
                state.as_str()
            );
        }
    }
}

/// The health table of one server's worker fleet.
pub(crate) struct WorkerHealth {
    slots: Vec<Arc<WorkerSlot>>,
}

impl WorkerHealth {
    pub(crate) fn new(workers: usize) -> Self {
        let epoch = Instant::now();
        let metrics = mnn_obs::global();
        let stalled_gauge = metrics.gauge(
            mnn_obs::metrics::names::STALLED_WORKERS,
            "Workers currently flagged stalled by the health watchdog.",
        );
        let stalls = metrics.counter(
            mnn_obs::metrics::names::WORKER_STALLS,
            "Workers flagged stalled by the health watchdog, cumulative.",
        );
        WorkerHealth {
            slots: (0..workers)
                .map(|index| {
                    Arc::new(WorkerSlot {
                        index,
                        state: AtomicU8::new(WorkerState::Idle as u8),
                        heartbeat_us: AtomicU64::new(0),
                        stalled: AtomicBool::new(false),
                        epoch,
                        stalled_gauge: stalled_gauge.clone(),
                        stalls: stalls.clone(),
                    })
                })
                .collect(),
        }
    }

    /// The slot worker `index` stamps.
    pub(crate) fn slot(&self, index: usize) -> Arc<WorkerSlot> {
        Arc::clone(&self.slots[index])
    }

    /// One watchdog tick: flag every non-idle worker whose heartbeat is older
    /// than `deadline`. Idempotent per stall — the counter/gauge/log fire
    /// once per stall episode, and the worker's own next heartbeat clears
    /// the flag.
    pub(crate) fn check(&self, deadline: Duration) {
        let deadline_us = deadline.as_micros() as u64;
        for slot in &self.slots {
            let state = WorkerState::from_u8(slot.state.load(Ordering::Relaxed));
            if state == WorkerState::Idle {
                continue;
            }
            let now_us = slot.epoch.elapsed().as_micros() as u64;
            let age_us = now_us.saturating_sub(slot.heartbeat_us.load(Ordering::Relaxed));
            if age_us > deadline_us && !slot.stalled.swap(true, Ordering::AcqRel) {
                slot.stalls.inc();
                slot.stalled_gauge.add(1.0);
                mnn_obs::warn!(
                    "mnn-serve",
                    "worker {} stalled: {} for {}ms without a heartbeat (deadline {}ms)",
                    slot.index,
                    state.as_str(),
                    age_us / 1000,
                    deadline.as_millis()
                );
            }
        }
    }

    /// Workers currently flagged stalled.
    pub(crate) fn stalled_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|slot| slot.stalled.load(Ordering::Relaxed))
            .count()
    }

    /// Every worker's last-stamped state, in worker-index order.
    pub(crate) fn states(&self) -> Vec<WorkerState> {
        self.slots
            .iter()
            .map(|slot| WorkerState::from_u8(slot.state.load(Ordering::Relaxed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_workers_are_never_flagged() {
        let health = WorkerHealth::new(2);
        // Heartbeats are ancient (never stamped), but both workers are idle.
        std::thread::sleep(Duration::from_millis(5));
        health.check(Duration::from_millis(1));
        assert_eq!(health.stalled_count(), 0);
    }

    #[test]
    fn stale_running_worker_is_flagged_once_and_recovers_on_beat() {
        let health = WorkerHealth::new(1);
        let slot = health.slot(0);
        slot.beat(WorkerState::Running);
        std::thread::sleep(Duration::from_millis(10));
        health.check(Duration::from_millis(2));
        health.check(Duration::from_millis(2)); // second tick: no double count
        assert_eq!(health.stalled_count(), 1);
        assert_eq!(health.states(), vec![WorkerState::Running]);

        slot.beat(WorkerState::Idle);
        assert_eq!(health.stalled_count(), 0, "heartbeat clears the flag");
        assert_eq!(health.states(), vec![WorkerState::Idle]);
    }

    #[test]
    fn fresh_heartbeats_pass_the_check() {
        let health = WorkerHealth::new(1);
        health.slot(0).beat(WorkerState::Batching);
        health.check(Duration::from_secs(5));
        assert_eq!(health.stalled_count(), 0);
    }
}
