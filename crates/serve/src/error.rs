//! Error type for the serving runtime.

use std::error::Error;
use std::fmt;

/// Errors produced by [`Server`](crate::Server) submission and response paths.
///
/// The type is `Clone` because one failed batched inference fans the same error
/// out to every request that was coalesced into the batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded request queue is at capacity; the caller should back off and
    /// retry (backpressure instead of unbounded buffering).
    QueueFull {
        /// Configured queue capacity that was hit.
        capacity: usize,
    },
    /// The server is shutting down (or has shut down) and accepts no new work.
    ShuttingDown,
    /// The request itself is malformed: wrong input names, duplicated names, or
    /// tensors the model cannot accept.
    InvalidRequest(String),
    /// The worker's inference failed; carries the stringified engine error.
    Inference(String),
    /// A configuration value is inconsistent (e.g. zero workers).
    InvalidConfig(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(
                    f,
                    "request queue is full (capacity {capacity}); retry later"
                )
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServeError::Inference(msg) => write!(f, "inference failed: {msg}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for ServeError {}

impl From<mnn_core::CoreError> for ServeError {
    fn from(value: mnn_core::CoreError) -> Self {
        ServeError::Inference(value.to_string())
    }
}

impl From<mnn_tensor::TensorError> for ServeError {
    fn from(value: mnn_tensor::TensorError) -> Self {
        ServeError::Inference(value.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(ServeError::QueueFull { capacity: 32 }
            .to_string()
            .contains("32"));
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
    }

    #[test]
    fn is_send_sync_clone() {
        fn check<T: Send + Sync + Clone>() {}
        check::<ServeError>();
    }

    #[test]
    fn wraps_core_errors() {
        let err: ServeError = mnn_core::CoreError::InvalidInput("bad".into()).into();
        assert!(matches!(err, ServeError::Inference(_)));
        assert!(err.to_string().contains("bad"));
    }
}
