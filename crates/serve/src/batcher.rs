//! Executing one micro-batch on a pooled session.
//!
//! The hot path of the serving runtime: stack the coalesced requests' inputs
//! along the batch dimension ([`Tensor::stack_batch`]), steer the session to
//! the batched geometry (`resize_input` + `resize_session`, which the
//! per-signature plan cache turns into an O(1) plan swap after first sight of
//! a batch size), run **one** inference, and scatter the outputs back to the
//! per-request response slots ([`Tensor::split_batch`]).
//!
//! Kernels compute each sample of a batch independently, so the scattered
//! outputs are bit-identical to running every request alone — the property the
//! stress test in `tests/stress.rs` locks in.

use crate::request::QueuedRequest;
use crate::stats::StatsCollector;
use crate::ServeError;
use mnn_core::{CoreError, Session};
use mnn_tensor::{Shape, Tensor};

/// Run `batch` (1..=max_batch requests with one shared signature) on
/// `session`, fulfilling every request's response slot and recording stats.
pub(crate) fn process_batch(
    session: &mut Session,
    mut batch: Vec<QueuedRequest>,
    stats: &StatsCollector,
) {
    // A panic anywhere in the engine (kernel asserts, layout checks) must not
    // kill the worker with the batch's slots unfulfilled — clients blocked in
    // `wait()` would hang forever. Contain it and fan out an error instead.
    // The session is safe to reuse: a run mutates only per-run state.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_batch(session, &mut batch)
    }))
    .unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "worker panicked".to_string());
        stats.record_worker_panic();
        mnn_obs::warn!(
            "mnn-serve",
            "worker panic contained, failing its batch: {msg}"
        );
        Err(ServeError::Inference(format!("worker panicked: {msg}")))
    });
    // Record stats BEFORE fulfilling any slot: a client that wakes from
    // `wait()` must already see its request in the counters.
    let latencies: Vec<f64> = batch
        .iter()
        .map(|request| request.enqueued.elapsed().as_secs_f64() * 1000.0)
        .collect();
    stats.record_batch(&latencies, result.is_ok());
    match result {
        Ok(outputs) => {
            for (request, outputs) in batch.iter().zip(outputs) {
                request.slot.fulfill(Ok(outputs));
            }
        }
        Err(error) => {
            for request in &batch {
                request.slot.fulfill(Err(error.clone()));
            }
        }
    }
}

/// The batched inference itself: returns per-request outputs in graph-output
/// order. Any failure fails the whole batch (the caller fans the error out).
fn run_batch(
    session: &mut Session,
    batch: &mut [QueuedRequest],
) -> Result<Vec<Vec<Tensor>>, ServeError> {
    let k = batch.len();
    debug_assert!(k > 0, "next_batch never returns an empty batch");

    // Take ownership of every request's tensors so stacking copies each input
    // buffer at most once.
    let mut taken: Vec<Vec<(String, Tensor)>> = batch
        .iter_mut()
        .map(|request| std::mem::take(&mut request.inputs))
        .collect();

    let stacked: Vec<(String, Tensor)> = if k == 1 {
        taken.pop().expect("k == 1")
    } else {
        let arity = taken[0].len();
        let mut stacked = Vec::with_capacity(arity);
        for position in (0..arity).rev() {
            // Pop from the back so each request's Vec shrinks without shifts.
            let mut column = Vec::with_capacity(k);
            let mut name = String::new();
            for inputs in taken.iter_mut() {
                let (n, tensor) = inputs.remove(position);
                name = n;
                column.push(tensor);
            }
            stacked.push((name, Tensor::stack_batch(&column)?));
        }
        stacked.reverse();
        stacked
    };

    ensure_geometry(session, &stacked)?;
    let refs: Vec<(&str, &Tensor)> = stacked
        .iter()
        .map(|(name, tensor)| (name.as_str(), tensor))
        .collect();
    let outputs = session.run_with(&refs)?;

    if k == 1 {
        return Ok(vec![outputs]);
    }
    // Scatter: split every output along the batch dimension and transpose to
    // per-request lists.
    let mut per_request: Vec<Vec<Tensor>> =
        (0..k).map(|_| Vec::with_capacity(outputs.len())).collect();
    for output in outputs {
        let parts = output.split_batch(k)?;
        for (request, part) in per_request.iter_mut().zip(parts) {
            request.push(part);
        }
    }
    Ok(per_request)
}

/// Resize the session's inputs to the batched geometry if it is not already
/// there. After the first batch of a given size this is a plan-cache hit.
fn ensure_geometry(session: &mut Session, inputs: &[(String, Tensor)]) -> Result<(), CoreError> {
    let mut dirty = false;
    for (name, tensor) in inputs {
        let current = current_input_shape(session, name)?;
        if current.as_ref() != Some(tensor.shape()) {
            session.resize_input(name, tensor.shape().clone())?;
            dirty = true;
        }
    }
    if dirty {
        session.resize_session()?;
    }
    Ok(())
}

fn current_input_shape(session: &Session, name: &str) -> Result<Option<Shape>, CoreError> {
    let graph = session.graph();
    let id = graph
        .input_named(name)
        .ok_or_else(|| CoreError::InvalidInput(format!("unknown input '{name}'")))?;
    Ok(graph.tensor_info(id)?.shape.clone())
}
