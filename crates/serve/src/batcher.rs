//! Executing one micro-batch on a pooled session.
//!
//! The hot path of the serving runtime: stack the coalesced requests' inputs
//! along the batch dimension ([`Tensor::stack_batch`]), steer the session to
//! the batched geometry (`resize_input` + `resize_session`, which the
//! per-signature plan cache turns into an O(1) plan swap after first sight of
//! a batch size), run **one** inference, and scatter the outputs back to the
//! per-request response slots ([`Tensor::split_batch`]).
//!
//! Kernels compute each sample of a batch independently, so the scattered
//! outputs are bit-identical to running every request alone — the property the
//! stress test in `tests/stress.rs` locks in.

use crate::request::QueuedRequest;
use crate::stats::StatsCollector;
use crate::ServeError;
use mnn_core::{CoreError, Session};
use mnn_obs::TraceContext;
use mnn_tensor::{Shape, Tensor};
use std::time::Instant;

/// Instants a batch run passes back so stages can be attributed: everything
/// before `run_start` is batch assembly (stacking, geometry), `run_start →
/// run_end` is the inference itself, and `run_end` onward is scatter.
#[derive(Default)]
struct RunMarks {
    run_start: Option<Instant>,
    run_end: Option<Instant>,
}

/// Run `batch` (1..=max_batch requests with one shared signature) on
/// `session`, fulfilling every request's response slot and recording stats.
pub(crate) fn process_batch(
    session: &mut Session,
    mut batch: Vec<QueuedRequest>,
    stats: &StatsCollector,
) {
    // The first traced member's scope wraps the run: the session executor
    // captures per-op spans into its sink, log lines carry its trace id, and
    // the profiler (if on) stamps its spans with the same id. Ops are copied
    // to the other traced members afterwards — the batch runs once, so every
    // member's waterfall shows the same kernels.
    let scope_trace = batch.iter().find_map(|request| request.trace.clone());
    let mut marks = RunMarks::default();
    // A panic anywhere in the engine (kernel asserts, layout checks) must not
    // kill the worker with the batch's slots unfulfilled — clients blocked in
    // `wait()` would hang forever. Contain it and fan out an error instead.
    // The session is safe to reuse: a run mutates only per-run state.
    let result = {
        let _scope = scope_trace.as_ref().map(|trace| trace.enter());
        if scope_trace.is_some() {
            mnn_obs::debug!("mnn-serve", "executing batch of {}", batch.len());
        }
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_batch(session, &mut batch, &mut marks)
        }))
        .unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            stats.record_worker_panic();
            mnn_obs::warn!(
                "mnn-serve",
                "worker panic contained, failing its batch: {msg}"
            );
            Err(ServeError::Inference(format!("worker panicked: {msg}")))
        })
    };
    let scatter_end = Instant::now();
    attribute_stages(&batch, scope_trace.as_ref(), &marks, scatter_end, stats);
    // Record stats BEFORE fulfilling any slot: a client that wakes from
    // `wait()` must already see its request in the counters.
    let latencies: Vec<(f64, Option<String>)> = batch
        .iter()
        .map(|request| {
            (
                request.enqueued.elapsed().as_secs_f64() * 1000.0,
                request.trace.as_ref().map(|trace| trace.trace_id_hex()),
            )
        })
        .collect();
    stats.record_batch(&latencies, result.is_ok());
    let status = if result.is_ok() { 200 } else { 500 };
    match result {
        Ok(outputs) => {
            for (request, outputs) in batch.iter().zip(outputs) {
                request.slot.fulfill(Ok(outputs));
            }
        }
        Err(error) => {
            for request in &batch {
                request.slot.fulfill(Err(error.clone()));
            }
        }
    }
    // Traces the serve layer opened itself (no HTTP frontend) end here, at
    // fulfillment; frontend-owned traces are finished after the response
    // write so the waterfall covers encode + write too.
    for request in &batch {
        if let Some(trace) = &request.trace {
            if trace.finishes_on_fulfill() {
                trace.stage_since("serve", 0, trace.started());
                trace.finish(status);
                stats.record_trace_finished();
            }
        }
    }
}

/// Attach queue-wait / batch-assembly / inference / scatter stage spans to
/// every traced member, link them all to one generated batch span, fan the
/// head's captured op spans out to the other members (shifted onto their
/// timebases), and feed the stage-wait stats windows.
fn attribute_stages(
    batch: &[QueuedRequest],
    scope_trace: Option<&mnn_obs::ActiveTrace>,
    marks: &RunMarks,
    scatter_end: Instant,
    stats: &StatsCollector,
) {
    // Stats stage windows are fed for every request, traced or not: the
    // dequeue stamp comes from the queue unconditionally.
    for request in batch {
        if let Some(dequeued) = request.dequeued {
            let queue_wait_ms = dequeued
                .saturating_duration_since(request.enqueued)
                .as_secs_f64()
                * 1000.0;
            let assembly_ms = marks
                .run_start
                .map(|rs| rs.saturating_duration_since(dequeued).as_secs_f64() * 1000.0)
                .unwrap_or(0.0);
            let id = request.trace.as_ref().map(|trace| trace.trace_id_hex());
            stats.record_stage_waits(queue_wait_ms, assembly_ms, id.as_deref());
        }
    }
    let Some(head) = scope_trace else {
        return;
    };
    // One span id names this batch execution; every traced member records it
    // together with the trace ids of its co-batched peers.
    let batch_span_id = TraceContext::generate().span_id_hex();
    let members: Vec<String> = batch
        .iter()
        .filter_map(|request| request.trace.as_ref().map(|trace| trace.trace_id_hex()))
        .collect();
    let head_ops = head
        .ops_sink()
        .lock()
        .map(|ops| ops.clone())
        .unwrap_or_default();
    for request in batch {
        let Some(trace) = &request.trace else {
            continue;
        };
        if let Some(dequeued) = request.dequeued {
            trace.add_stage("queue_wait", 1, request.enqueued, dequeued);
            if let Some(run_start) = marks.run_start {
                trace.add_stage("batch_assembly", 1, dequeued, run_start);
            }
        }
        if let (Some(run_start), Some(run_end)) = (marks.run_start, marks.run_end) {
            trace.add_stage("inference", 1, run_start, run_end);
            trace.add_stage("scatter", 1, run_end, scatter_end);
        }
        trace.set_batch(&batch_span_id, members.clone());
        let is_head = trace.context() == head.context();
        if !is_head && !head_ops.is_empty() {
            // The ops were timed against the head's start; shift them onto
            // this member's timebase and restamp the trace id.
            let shift_us = match trace.started().checked_duration_since(head.started()) {
                Some(later) => -(later.as_secs_f64() * 1e6),
                None => {
                    head.started()
                        .saturating_duration_since(trace.started())
                        .as_secs_f64()
                        * 1e6
                }
            };
            let trace_id = trace.trace_id_hex();
            let shifted = head_ops.iter().map(|op| {
                let mut op = op.clone();
                op.start_us += shift_us;
                op.trace_id = trace_id.clone();
                op
            });
            if let Ok(mut sink) = trace.ops_sink().lock() {
                sink.extend(shifted);
            }
        }
    }
}

/// The batched inference itself: returns per-request outputs in graph-output
/// order. Any failure fails the whole batch (the caller fans the error out).
fn run_batch(
    session: &mut Session,
    batch: &mut [QueuedRequest],
    marks: &mut RunMarks,
) -> Result<Vec<Vec<Tensor>>, ServeError> {
    let k = batch.len();
    debug_assert!(k > 0, "next_batch never returns an empty batch");

    // Take ownership of every request's tensors so stacking copies each input
    // buffer at most once.
    let mut taken: Vec<Vec<(String, Tensor)>> = batch
        .iter_mut()
        .map(|request| std::mem::take(&mut request.inputs))
        .collect();

    let stacked: Vec<(String, Tensor)> = if k == 1 {
        taken.pop().expect("k == 1")
    } else {
        let arity = taken[0].len();
        let mut stacked = Vec::with_capacity(arity);
        for position in (0..arity).rev() {
            // Pop from the back so each request's Vec shrinks without shifts.
            let mut column = Vec::with_capacity(k);
            let mut name = String::new();
            for inputs in taken.iter_mut() {
                let (n, tensor) = inputs.remove(position);
                name = n;
                column.push(tensor);
            }
            stacked.push((name, Tensor::stack_batch(&column)?));
        }
        stacked.reverse();
        stacked
    };

    ensure_geometry(session, &stacked)?;
    let refs: Vec<(&str, &Tensor)> = stacked
        .iter()
        .map(|(name, tensor)| (name.as_str(), tensor))
        .collect();
    marks.run_start = Some(Instant::now());
    let outputs = session.run_with(&refs)?;
    marks.run_end = Some(Instant::now());

    if k == 1 {
        return Ok(vec![outputs]);
    }
    // Scatter: split every output along the batch dimension and transpose to
    // per-request lists.
    let mut per_request: Vec<Vec<Tensor>> =
        (0..k).map(|_| Vec::with_capacity(outputs.len())).collect();
    for output in outputs {
        let parts = output.split_batch(k)?;
        for (request, part) in per_request.iter_mut().zip(parts) {
            request.push(part);
        }
    }
    Ok(per_request)
}

/// Resize the session's inputs to the batched geometry if it is not already
/// there. After the first batch of a given size this is a plan-cache hit.
fn ensure_geometry(session: &mut Session, inputs: &[(String, Tensor)]) -> Result<(), CoreError> {
    let mut dirty = false;
    for (name, tensor) in inputs {
        let current = current_input_shape(session, name)?;
        if current.as_ref() != Some(tensor.shape()) {
            session.resize_input(name, tensor.shape().clone())?;
            dirty = true;
        }
    }
    if dirty {
        session.resize_session()?;
    }
    Ok(())
}

fn current_input_shape(session: &Session, name: &str) -> Result<Option<Shape>, CoreError> {
    let graph = session.graph();
    let id = graph
        .input_named(name)
        .ok_or_else(|| CoreError::InvalidInput(format!("unknown input '{name}'")))?;
    Ok(graph.tensor_info(id)?.shape.clone())
}
