//! The [`Server`]: worker threads, submission API and lifecycle.

use crate::batcher;
use crate::health::{WorkerHealth, WorkerSlot, WorkerState};
use crate::queue::RequestQueue;
use crate::request::{QueuedRequest, ResponseHandle, ResponseSlot, Signature};
use crate::stats::{ServerStats, StatsCollector};
use crate::ServeError;
use mnn_core::{Interpreter, SessionConfig, SessionPool, TuningMode};
use mnn_graph::Graph;
use mnn_obs::{ActiveTrace, FlightRecorder, SloConfig, SloSnapshot, SloTracker};
use mnn_tensor::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default watchdog deadline: generous enough that only a genuinely wedged
/// worker (deadlocked kernel, runaway inference) trips it.
const DEFAULT_WATCHDOG_DEADLINE: Duration = Duration::from_secs(30);

/// Configures and builds a [`Server`]; obtained from [`Server::builder`].
#[derive(Debug, Clone)]
pub struct ServerBuilder {
    workers: usize,
    max_batch: usize,
    batch_window: Duration,
    queue_capacity: Option<usize>,
    session: SessionConfig,
    trace_recorder: Option<Arc<FlightRecorder>>,
    watchdog_deadline: Duration,
    slo: Option<SloConfig>,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        ServerBuilder {
            workers: 2,
            max_batch: 8,
            batch_window: Duration::from_millis(1),
            queue_capacity: None,
            session: SessionConfig::default(),
            trace_recorder: None,
            watchdog_deadline: DEFAULT_WATCHDOG_DEADLINE,
            slo: None,
        }
    }
}

impl ServerBuilder {
    /// Number of worker threads, each owning one pre-warmed session (default 2).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Largest number of compatible requests coalesced into one inference
    /// (default 8). `1` disables micro-batching.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// How long a worker holding a partial batch waits for more compatible
    /// requests before running it (default 1 ms). Bounds the latency cost a
    /// request can pay for batching.
    pub fn batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Bound on queued (not yet executing) requests; submission beyond it
    /// fails with [`ServeError::QueueFull`]. Defaults to
    /// `workers * max_batch * 4`.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Session configuration used by every worker (threads, backends, …).
    ///
    /// The plan-cache capacity is raised to at least `max_batch + 1` so each
    /// batch size 1..=`max_batch` keeps a warm plan.
    pub fn session_config(mut self, config: SessionConfig) -> Self {
        self.session = config;
        self
    }

    /// Kernel auto-tuning mode for the pooled sessions (default
    /// [`TuningMode::Off`]); shorthand for setting it on
    /// [`ServerBuilder::session_config`].
    ///
    /// With [`TuningMode::Full`] the **first** pre-warmed worker measures each
    /// convolution's candidate kernels once; the remaining workers find the
    /// results in the process-shared, device-keyed tuning cache and perform
    /// zero measurements — pre-warm cost stays one tuning pass regardless of
    /// pool size. Configure `SessionConfig::tune_cache_path` (or
    /// `MNN_TUNE_CACHE`) to persist the measurements so the next process
    /// starts warm.
    pub fn tuning(mut self, mode: TuningMode) -> Self {
        self.session.tuning = mode;
        self
    }

    /// Attach a [`FlightRecorder`]: every [`Server::submit`] without an
    /// explicit trace opens one (finished at fulfillment), and traces handed
    /// in through [`Server::submit_with_trace`] gain serve-side stage spans.
    /// Without a recorder the server never takes tracing timestamps beyond
    /// the queue's dequeue stamp.
    pub fn trace_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.trace_recorder = Some(recorder);
        self
    }

    /// How long a non-idle worker may go without a heartbeat before the
    /// watchdog flags it stalled (default 30 s). Workers heartbeat at batch
    /// boundaries, so the deadline must comfortably exceed the longest
    /// expected single inference. A stalled worker raises the
    /// `mnn_stalled_workers` gauge, increments `mnn_worker_stalls_total`,
    /// surfaces in [`ServerStats::stalled_workers`] and fails `/readyz`; the
    /// flag clears when the worker heartbeats again.
    pub fn watchdog_deadline(mut self, deadline: Duration) -> Self {
        self.watchdog_deadline = deadline;
        self
    }

    /// Attach a latency/availability service-level objective. Every completed
    /// request feeds a rolling one-hour window; compliance and burn rates are
    /// reported in [`ServerStats::slo`] (and `/v1/status` under `mnn-http`).
    pub fn slo(mut self, config: SloConfig) -> Self {
        self.slo = Some(config);
        self
    }

    /// Validate the graph and start the server: builds the session pool (full
    /// pre-inference per worker) and spawns the worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero workers/batch/queue or a
    /// graph that fails validation or pre-inference.
    pub fn build(self, graph: Graph) -> Result<Server, ServeError> {
        let interpreter =
            Interpreter::from_graph(graph).map_err(|e| ServeError::InvalidConfig(e.to_string()))?;
        self.build_from_interpreter(&interpreter)
    }

    /// Like [`ServerBuilder::build`], for a graph already held by an
    /// [`Interpreter`] (the server shares it, no copy).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for inconsistent settings and
    /// propagates pre-inference failures.
    pub fn build_from_interpreter(self, interpreter: &Interpreter) -> Result<Server, ServeError> {
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be >= 1".into()));
        }
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be >= 1".into()));
        }
        let queue_capacity = self
            .queue_capacity
            .unwrap_or(self.workers * self.max_batch * 4);
        if queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue capacity must be >= 1".into(),
            ));
        }

        let mut session = self.session.clone();
        // Every batch size in 1..=max_batch is its own input geometry; keep
        // them all warm in the plan cache.
        session.plan_cache_capacity = session.plan_cache_capacity.max(self.max_batch + 1);
        let pool = SessionPool::new(interpreter, session, self.workers)
            .map_err(|e| ServeError::InvalidConfig(e.to_string()))?;

        let queue = Arc::new(RequestQueue::new(queue_capacity));
        let slo = self.slo.map(|config| Arc::new(SloTracker::new(config)));
        let stats = Arc::new(StatsCollector::new(self.max_batch, slo.clone()));
        let health = Arc::new(WorkerHealth::new(self.workers));
        let workers = (0..self.workers)
            .map(|index| {
                let queue = Arc::clone(&queue);
                let stats = Arc::clone(&stats);
                let pool = pool.clone();
                let max_batch = self.max_batch;
                let window = self.batch_window;
                let slot = health.slot(index);
                std::thread::Builder::new()
                    .name(format!("mnn-serve-{index}"))
                    .spawn(move || worker_loop(&queue, &pool, &stats, max_batch, window, &slot))
                    .map_err(|e| ServeError::InvalidConfig(format!("spawn failed: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;

        // The watchdog samples much faster than the deadline so a stall is
        // flagged promptly after it exceeds the budget, without busy-spinning.
        let watchdog_stop = Arc::new(AtomicBool::new(false));
        let watchdog = {
            let health = Arc::clone(&health);
            let stop = Arc::clone(&watchdog_stop);
            let deadline = self.watchdog_deadline;
            let interval =
                (deadline / 4).clamp(Duration::from_millis(1), Duration::from_millis(500));
            std::thread::Builder::new()
                .name("mnn-serve-watchdog".into())
                .spawn(move || {
                    // Sleep in short slices so shutdown never waits a full
                    // interval for the watchdog to notice the stop flag.
                    let slice = interval.min(Duration::from_millis(10));
                    let mut next_check = Instant::now();
                    while !stop.load(Ordering::Relaxed) {
                        if Instant::now() >= next_check {
                            health.check(deadline);
                            next_check = Instant::now() + interval;
                        }
                        std::thread::sleep(slice);
                    }
                })
                .map_err(|e| ServeError::InvalidConfig(format!("spawn failed: {e}")))?
        };

        Ok(Server {
            graph: interpreter.graph_arc(),
            queue,
            stats,
            workers,
            worker_count: self.workers,
            max_batch: self.max_batch,
            batch_window: self.batch_window,
            queue_capacity,
            trace_recorder: self.trace_recorder,
            health,
            watchdog: Some(watchdog),
            watchdog_stop,
            watchdog_deadline: self.watchdog_deadline,
            slo,
        })
    }
}

/// One worker: pull micro-batches until the queue closes and drains,
/// heartbeating its health slot at every batch boundary.
fn worker_loop(
    queue: &RequestQueue,
    pool: &SessionPool,
    stats: &StatsCollector,
    max_batch: usize,
    batch_window: Duration,
    slot: &WorkerSlot,
) {
    loop {
        slot.beat(WorkerState::Idle);
        let Some(batch) = queue.next_batch_observed(max_batch, batch_window, Some(slot)) else {
            break;
        };
        slot.beat(WorkerState::Running);
        let mut session = pool.acquire();
        batcher::process_batch(&mut session, batch, stats);
    }
    slot.beat(WorkerState::Idle);
}

/// A concurrent model server: a pool of pre-warmed sessions fed by a bounded
/// request queue with dynamic micro-batching.
///
/// * [`Server::submit`] enqueues a request and returns a [`ResponseHandle`]
///   immediately (or [`ServeError::QueueFull`] — backpressure).
/// * [`Server::infer`] is the blocking convenience: submit + wait.
/// * [`Server::stats`] snapshots throughput, latency percentiles, the
///   batch-size histogram and queue depth.
///
/// Dropping the server shuts it down gracefully: queued requests are still
/// served, then the workers exit and are joined.
pub struct Server {
    graph: Arc<Graph>,
    queue: Arc<RequestQueue>,
    stats: Arc<StatsCollector>,
    workers: Vec<JoinHandle<()>>,
    worker_count: usize,
    max_batch: usize,
    batch_window: Duration,
    queue_capacity: usize,
    trace_recorder: Option<Arc<FlightRecorder>>,
    health: Arc<WorkerHealth>,
    watchdog: Option<JoinHandle<()>>,
    watchdog_stop: Arc<AtomicBool>,
    watchdog_deadline: Duration,
    slo: Option<Arc<SloTracker>>,
}

impl Server {
    /// Start configuring a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// Build a server with default settings (2 workers, micro-batching up to 8).
    ///
    /// # Errors
    ///
    /// See [`ServerBuilder::build`].
    pub fn new(graph: Graph) -> Result<Server, ServeError> {
        Server::builder().build(graph)
    }

    /// Enqueue one inference request (named inputs, one sample each) and
    /// return a handle to await its outputs.
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidRequest`] for unknown, missing or duplicated
    ///   input names.
    /// * [`ServeError::QueueFull`] when the bounded queue is at capacity —
    ///   back off and retry.
    /// * [`ServeError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, inputs: &[(&str, &Tensor)]) -> Result<ResponseHandle, ServeError> {
        // With a recorder attached (and enabled — one relaxed load decides),
        // embedded submissions open their own trace; it is finished when the
        // worker fulfills the response slot.
        let trace = self
            .trace_recorder
            .as_ref()
            .and_then(|recorder| recorder.begin_owned_trace_at(None, Instant::now()));
        self.submit_with_trace(inputs, trace)
    }

    /// Like [`Server::submit`], carrying a caller-created trace (usually one
    /// the HTTP frontend opened at accept time and will finish after the
    /// response write). The serve layer attributes queue-wait,
    /// batch-assembly, inference and scatter stage spans — and the micro-batch
    /// link — to it. `None` disables tracing for this request.
    ///
    /// # Errors
    ///
    /// Same as [`Server::submit`]. [`ActiveTrace`] is a cheap `Arc` handle:
    /// callers that must seal the trace themselves (e.g. with a rejection
    /// status) pass a clone and keep one.
    pub fn submit_with_trace(
        &self,
        inputs: &[(&str, &Tensor)],
        trace: Option<ActiveTrace>,
    ) -> Result<ResponseHandle, ServeError> {
        // Fail on backpressure BEFORE cloning any tensor: rejected submissions
        // must stay cheap precisely when the server is saturated. (`try_push`
        // re-checks authoritatively under the same lock.)
        self.queue.check_admission().map_err(|err| {
            if matches!(err, ServeError::QueueFull { .. }) {
                self.stats.record_rejected();
            }
            err
        })?;
        let expected = self.graph.inputs().len();
        if inputs.len() != expected {
            return Err(ServeError::InvalidRequest(format!(
                "expected {expected} inputs, got {}",
                inputs.len()
            )));
        }
        let mut normalized: Vec<(String, Tensor)> = Vec::with_capacity(inputs.len());
        for (name, tensor) in inputs {
            if self.graph.input_named(name).is_none() {
                return Err(ServeError::InvalidRequest(format!(
                    "unknown input '{name}'; graph inputs are {:?}",
                    self.graph.input_names()
                )));
            }
            if normalized.iter().any(|(n, _)| n == name) {
                return Err(ServeError::InvalidRequest(format!(
                    "input '{name}' was provided more than once"
                )));
            }
            normalized.push((name.to_string(), (*tensor).clone()));
        }
        normalized.sort_by(|a, b| a.0.cmp(&b.0));

        let batchable = normalized
            .iter()
            .all(|(_, t)| t.shape().is_4d() && t.shape().batch() == 1);
        if let Some(trace) = &trace {
            trace.set_model(self.graph.name());
        }
        let slot = ResponseSlot::new();
        let request = QueuedRequest {
            signature: Signature::of(&normalized),
            inputs: normalized,
            batchable,
            slot: Arc::clone(&slot),
            enqueued: Instant::now(),
            dequeued: None,
            trace,
        };
        match self.queue.try_push(request) {
            Ok(()) => {
                self.stats.record_submitted();
                Ok(ResponseHandle::new(slot))
            }
            Err(err) => {
                if matches!(err, ServeError::QueueFull { .. }) {
                    self.stats.record_rejected();
                }
                Err(err)
            }
        }
    }

    /// Blocking inference: submit and wait for the outputs (graph-output
    /// order).
    ///
    /// # Errors
    ///
    /// Everything [`Server::submit`] returns, plus inference failures
    /// surfaced by the worker.
    pub fn infer(&self, inputs: &[(&str, &Tensor)]) -> Result<Vec<Tensor>, ServeError> {
        self.submit(inputs)?.wait()
    }

    /// Blocking inference carrying a caller-created trace; see
    /// [`Server::submit_with_trace`].
    ///
    /// # Errors
    ///
    /// Same as [`Server::infer`].
    pub fn infer_with_trace(
        &self,
        inputs: &[(&str, &Tensor)],
        trace: Option<ActiveTrace>,
    ) -> Result<Vec<Tensor>, ServeError> {
        self.submit_with_trace(inputs, trace)?.wait()
    }

    /// The flight recorder attached at build time, if any.
    pub fn trace_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.trace_recorder.as_ref()
    }

    /// Snapshot of throughput, latency percentiles, batch histogram, queue
    /// depth, worker health and SLO compliance.
    pub fn stats(&self) -> ServerStats {
        self.stats
            .snapshot(self.queue.depth(), self.worker_count, Some(&self.health))
    }

    /// Workers currently flagged stalled by the health watchdog.
    pub fn stalled_workers(&self) -> usize {
        self.health.stalled_count()
    }

    /// Configured watchdog deadline (see [`ServerBuilder::watchdog_deadline`]).
    pub fn watchdog_deadline(&self) -> Duration {
        self.watchdog_deadline
    }

    /// SLO compliance over the rolling window, if an SLO was configured.
    pub fn slo_snapshot(&self) -> Option<SloSnapshot> {
        self.slo.as_ref().map(|tracker| tracker.snapshot())
    }

    /// The model served by this server.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Configured micro-batch ceiling.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Configured batching window.
    pub fn batch_window(&self) -> Duration {
        self.batch_window
    }

    /// Configured queue bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Requests currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Stop accepting requests, serve everything already queued, and join the
    /// workers. Called automatically on drop.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    /// Deadline-bounded graceful shutdown: reject new submissions immediately,
    /// give queued requests up to `deadline` to drain, then evict whatever is
    /// still waiting — every evicted request's waiter receives
    /// [`ServeError::ShuttingDown`] instead of hanging — and join the workers.
    ///
    /// Batches already executing when the deadline passes still run to
    /// completion and are delivered; only *queued* work is abandoned. The
    /// returned [`DrainReport`] says whether the queue drained fully.
    pub fn shutdown_with_deadline(mut self, deadline: Duration) -> DrainReport {
        let deadline_at = Instant::now() + deadline;
        self.queue.close();
        while self.queue.depth() > 0 && Instant::now() < deadline_at {
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut aborted = 0;
        aborted += self.fail_evicted();
        self.join_workers();
        // Workers are gone; anything still queued (possible only if a worker
        // died outside batch processing) must be failed, not abandoned.
        aborted += self.fail_evicted();
        // Drop must not run the unbounded drain again.
        debug_assert!(self.workers.is_empty());
        DrainReport {
            drained: aborted == 0,
            aborted,
        }
    }

    /// Evict still-queued requests and fail their slots; returns the count.
    fn fail_evicted(&self) -> usize {
        let evicted = self.queue.abort();
        let count = evicted.len();
        if count > 0 {
            self.stats.record_aborted(count);
        }
        for request in evicted {
            request.slot.fulfill(Err(ServeError::ShuttingDown));
            // Serve-owned traces end here; frontend-owned ones are sealed by
            // the frontend's error path.
            if let Some(trace) = &request.trace {
                if trace.finishes_on_fulfill() {
                    trace.stage_since("serve", 0, trace.started());
                    trace.finish(503);
                    self.stats.record_trace_finished();
                }
            }
        }
        count
    }

    fn join_workers(&mut self) {
        self.watchdog_stop.store(true, Ordering::Relaxed);
        if let Some(watchdog) = self.watchdog.take() {
            // The watchdog never panics, but a join error must not unwind
            // here either (this runs from Drop).
            let _ = watchdog.join();
        }
        for worker in self.workers.drain(..) {
            // Workers contain panics around each batch (see `process_batch`),
            // so join errors should be impossible; if one happens anyway, do
            // NOT resume_unwind here — this runs from Drop, and unwinding
            // during another unwind aborts the process.
            if worker.join().is_err() {
                self.stats.record_worker_panic();
                mnn_obs::warn!(
                    "mnn-serve",
                    "worker thread panicked outside batch processing"
                );
            }
        }
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        self.join_workers();
        // If a worker died, its share of the queue was never served; fail those
        // slots so blocked `wait()` callers wake instead of hanging forever.
        self.fail_evicted();
    }
}

/// Outcome of [`Server::shutdown_with_deadline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether every queued request was served before the deadline.
    pub drained: bool,
    /// Queued requests evicted at the deadline; each received
    /// [`ServeError::ShuttingDown`].
    pub aborted: usize,
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("model", &self.graph.name())
            .field("workers", &self.worker_count)
            .field("max_batch", &self.max_batch)
            .field("batch_window", &self.batch_window)
            .field("queue_capacity", &self.queue_capacity)
            .finish()
    }
}
