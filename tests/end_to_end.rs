//! Integration tests spanning the whole stack: model zoo → offline conversion →
//! pre-inference → session execution.

use mnn::converter::{optimize, quantize_weights, ModelFile, OptimizerOptions};
use mnn::models::{build, ModelKind};
use mnn::tensor::{Shape, Tensor};
use mnn::{Interpreter, SessionConfig};

fn deterministic_input(shape: Shape) -> Tensor {
    let n = shape.num_elements();
    Tensor::from_vec(
        shape,
        (0..n).map(|i| ((i % 37) as f32 - 18.0) * 0.03).collect(),
    )
}

fn run_model(graph: mnn::Graph, input: &Tensor, threads: usize) -> Vec<Tensor> {
    let interpreter = Interpreter::from_graph(graph).expect("interpreter");
    let mut session = interpreter
        .create_session(SessionConfig::cpu(threads))
        .expect("session");
    session.run(std::slice::from_ref(input)).expect("inference")
}

#[test]
fn tiny_cnn_end_to_end_produces_a_probability_distribution() {
    let graph = build(ModelKind::TinyCnn, 1, 32);
    let input = deterministic_input(Shape::nchw(1, 3, 32, 32));
    let outputs = run_model(graph, &input, 2);
    assert_eq!(outputs.len(), 1);
    assert_eq!(outputs[0].shape().dims(), &[1, 10]);
    let sum: f32 = outputs[0].data_f32().iter().sum();
    assert!((sum - 1.0).abs() < 1e-4);
    assert!(outputs[0].data_f32().iter().all(|&p| p >= 0.0));
}

#[test]
fn optimized_graph_matches_unoptimized_graph_outputs() {
    // The offline optimizer (Conv+BN folding, Conv+ReLU fusion, dead-node
    // elimination) must not change inference results.
    let original = build(ModelKind::TinyCnn, 1, 32);
    let mut optimized = original.clone();
    let report = optimize(&mut optimized, OptimizerOptions::default());
    assert!(report.fused_batch_norms >= 1);
    assert!(report.nodes_after < report.nodes_before);

    let input = deterministic_input(Shape::nchw(1, 3, 32, 32));
    let base = run_model(original, &input, 2);
    let opt = run_model(optimized, &input, 2);
    assert!(base[0].max_abs_diff(&opt[0]) < 1e-4);
}

#[test]
fn model_file_roundtrip_preserves_inference_results() {
    let graph = build(ModelKind::TinyCnn, 1, 32);
    let input = deterministic_input(Shape::nchw(1, 3, 32, 32));
    let expected = run_model(graph.clone(), &input, 1);

    let bytes = ModelFile::new(graph).to_bytes().expect("serialize");
    let restored = ModelFile::from_bytes(&bytes).expect("deserialize");
    let got = run_model(restored.graph, &input, 1);
    assert_eq!(expected[0].data_f32(), got[0].data_f32());
}

#[test]
fn quantized_model_stays_close_to_the_float_model() {
    let graph = build(ModelKind::TinyCnn, 1, 32);
    let input = deterministic_input(Shape::nchw(1, 3, 32, 32));
    let float_out = run_model(graph.clone(), &input, 2);

    let mut quantized = graph;
    let report = quantize_weights(&mut quantized);
    assert!(report.quantized_tensors > 0);
    let quant_out = run_model(quantized, &input, 2);

    // Outputs are post-softmax probabilities; int8 weight quantization should move
    // them only slightly.
    assert!(float_out[0].max_abs_diff(&quant_out[0]) < 0.05);
}

#[test]
fn squeezenet_at_reduced_resolution_runs_end_to_end() {
    // A real zoo model (fire modules, concat, pooling) through the whole pipeline.
    let mut graph = build(ModelKind::SqueezeNetV1_1, 1, 64);
    optimize(&mut graph, OptimizerOptions::default());
    let input = deterministic_input(Shape::nchw(1, 3, 64, 64));
    let outputs = run_model(graph, &input, 4);
    assert_eq!(outputs[0].shape().num_elements(), 1000);
    let sum: f32 = outputs[0].data_f32().iter().sum();
    assert!((sum - 1.0).abs() < 1e-3);
}

#[test]
fn thread_count_does_not_change_results() {
    let graph = build(ModelKind::TinyCnn, 1, 32);
    let input = deterministic_input(Shape::nchw(1, 3, 32, 32));
    let single = run_model(graph.clone(), &input, 1);
    let multi = run_model(graph, &input, 4);
    assert!(single[0].max_abs_diff(&multi[0]) < 1e-5);
}

#[test]
fn batch_inference_matches_per_sample_inference() {
    let graph_b2 = build(ModelKind::TinyCnn, 2, 32);
    let graph_b1 = build(ModelKind::TinyCnn, 1, 32);
    // Two different samples packed into one batch.
    let sample0 = deterministic_input(Shape::nchw(1, 3, 32, 32));
    let sample1 = Tensor::full(Shape::nchw(1, 3, 32, 32), 0.2);
    let mut batched = Vec::new();
    batched.extend_from_slice(sample0.data_f32());
    batched.extend_from_slice(sample1.data_f32());
    let batch_input = Tensor::from_vec(Shape::nchw(2, 3, 32, 32), batched);

    let batch_out = run_model(graph_b2, &batch_input, 2);
    let out0 = run_model(graph_b1.clone(), &sample0, 2);
    let out1 = run_model(graph_b1, &sample1, 2);

    let batch = batch_out[0].data_f32();
    for (i, expected) in out0[0].data_f32().iter().enumerate() {
        assert!((batch[i] - expected).abs() < 1e-4);
    }
    for (i, expected) in out1[0].data_f32().iter().enumerate() {
        assert!((batch[10 + i] - expected).abs() < 1e-4);
    }
}
