//! Integration tests for the pre-inference mechanism: scheme selection, hybrid
//! scheduling, preparation–execution decoupling and memory planning.

use mnn::models::{build, ModelKind};
use mnn::tensor::{Shape, Tensor};
use mnn::{ConvScheme, ForwardType, GpuProfile, Interpreter, SessionConfig};

fn input(size: usize) -> Tensor {
    Tensor::from_vec(
        Shape::nchw(1, 3, size, size),
        (0..3 * size * size)
            .map(|i| ((i % 29) as f32 - 14.0) * 0.05)
            .collect(),
    )
}

#[test]
fn scheme_selection_covers_the_whole_scheme_pool_on_a_real_model() {
    let graph = build(ModelKind::SqueezeNetV1_1, 1, 64);
    let interpreter = Interpreter::from_graph(graph).unwrap();
    let session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let schemes: Vec<ConvScheme> = session
        .report()
        .placements
        .iter()
        .filter_map(|p| p.scheme)
        .collect();
    assert!(!schemes.is_empty());
    // SqueezeNet mixes 1x1 squeeze/expand convolutions (Strassen path) with 3x3
    // expand convolutions (Winograd or sliding window).
    assert!(schemes.iter().any(|s| matches!(s, ConvScheme::Strassen1x1)));
    assert!(schemes
        .iter()
        .any(|s| matches!(s, ConvScheme::Winograd { .. } | ConvScheme::SlidingWindow)));
}

#[test]
fn mobilenet_uses_depthwise_and_pointwise_schemes() {
    let graph = build(ModelKind::MobileNetV1, 1, 64);
    let interpreter = Interpreter::from_graph(graph).unwrap();
    let session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let schemes: Vec<ConvScheme> = session
        .report()
        .placements
        .iter()
        .filter_map(|p| p.scheme)
        .collect();
    assert!(schemes.iter().any(|s| matches!(s, ConvScheme::Depthwise)));
    assert!(schemes.iter().any(|s| matches!(s, ConvScheme::Strassen1x1)));
}

#[test]
fn hybrid_session_agrees_with_cpu_session_and_uses_both_backends() {
    let graph = build(ModelKind::TinyCnn, 1, 32);
    let interpreter = Interpreter::from_graph(graph).unwrap();
    let mut cpu = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let mut hybrid = interpreter
        .create_session(SessionConfig::gpu(
            ForwardType::Vulkan,
            GpuProfile::by_name("Adreno 540"),
        ))
        .unwrap();
    let x = input(32);
    let a = cpu.run(std::slice::from_ref(&x)).unwrap();
    let b = hybrid.run(std::slice::from_ref(&x)).unwrap();
    assert!(a[0].max_abs_diff(&b[0]) < 1e-4);

    let backends: std::collections::BTreeSet<ForwardType> = hybrid
        .report()
        .placements
        .iter()
        .map(|p| p.forward_type)
        .collect();
    assert!(backends.contains(&ForwardType::Vulkan));
    assert!(backends.contains(&ForwardType::Cpu));
    assert!(hybrid.last_stats().gpu_virtual_ms > 0.0);
}

#[test]
fn decoupling_preparation_does_not_change_results_and_reduces_per_run_work() {
    let graph = build(ModelKind::TinyCnn, 1, 32);
    let interpreter = Interpreter::from_graph(graph).unwrap();
    let x = input(32);

    let mut decoupled = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let mut coupled = interpreter
        .create_session(SessionConfig {
            decouple_preparation: false,
            ..SessionConfig::cpu(2)
        })
        .unwrap();

    let a = decoupled.run(std::slice::from_ref(&x)).unwrap();
    let b = coupled.run(std::slice::from_ref(&x)).unwrap();
    assert!(a[0].max_abs_diff(&b[0]) < 1e-5);

    // Averaged over a few runs, paying preparation on every inference can only be
    // slower or equal (it repeats weight transforms and execution creation). The
    // margin is generous because wall-clock comparisons run concurrently with the
    // rest of the test suite.
    let with = decoupled
        .benchmark(std::slice::from_ref(&x), 2, 10)
        .unwrap();
    let without = coupled.benchmark(std::slice::from_ref(&x), 2, 10).unwrap();
    assert!(
        without.wall_ms >= with.wall_ms * 0.6,
        "decoupled runs should not be drastically slower"
    );
}

#[test]
fn memory_plan_reuses_buffers_on_deep_models() {
    let graph = build(ModelKind::MobileNetV1, 1, 64);
    let interpreter = Interpreter::from_graph(graph).unwrap();
    let session = interpreter.create_session(SessionConfig::cpu(1)).unwrap();
    let report = session.report();
    // A 28-layer chain-like network reuses the vast majority of its intermediates.
    assert!(report.memory_savings_ratio() > 0.5);
    assert!(report.planned_memory_elements > 0);
}

#[test]
fn estimated_costs_decrease_with_more_threads() {
    let graph = build(ModelKind::TinyCnn, 1, 32);
    let interpreter = Interpreter::from_graph(graph).unwrap();
    let s1 = interpreter.create_session(SessionConfig::cpu(1)).unwrap();
    let s4 = interpreter.create_session(SessionConfig::cpu(4)).unwrap();
    assert!(s4.report().estimated_total_ms < s1.report().estimated_total_ms);
}

#[test]
fn capability_table_reports_cpu_as_superset_of_gpu() {
    let row = mnn::backend::capability::mnn_rs_capability();
    assert!(row.cpu_ops.unwrap() >= row.vulkan_ops.unwrap());
    assert!(row.vulkan_ops.unwrap() > 0);
}
