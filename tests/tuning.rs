//! Integration tests for `mnn-tune`: measured scheme selection wired through
//! sessions, pools and the persistent device-keyed cache.
//!
//! Every test that asserts on tuning-stats counters uses its own unique cache
//! path: the shared cache registry is keyed by (fingerprint, path), so a
//! unique path isolates a test's counters from everything else running in the
//! process.

use mnn::converter::{optimize, quantize_weights, OptimizerOptions};
use mnn::core::{Interpreter, SessionConfig, SessionPool, TuningMode};
use mnn::models::{build, ModelKind};
use mnn::tensor::{Shape, Tensor};
use mnn::tune;
use std::path::PathBuf;
use std::sync::Mutex;

/// The shared-cache registry (and its counters) are process-global, and some
/// tests below clear it to simulate a fresh process. Serialize every test in
/// this file so a mid-test `clear_process_caches` can never hand a sibling
/// test a re-opened cache with zeroed counters.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

fn registry_guard() -> std::sync::MutexGuard<'static, ()> {
    REGISTRY_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn unique_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mnn-tuning-it-{}-{tag}.json", std::process::id()))
}

fn tuned_config(path: &PathBuf, mode: TuningMode) -> SessionConfig {
    SessionConfig::builder()
        .threads(1)
        .tuning(mode)
        .tune_cache_path(path)
        .build()
}

fn deterministic_input(size: usize, seed: u64) -> Tensor {
    let shape = Shape::nchw(1, 3, size, size);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let data = (0..shape.num_elements())
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        })
        .collect();
    Tensor::from_vec(shape, data)
}

#[test]
fn full_tuning_produces_valid_outputs_and_a_measured_report() {
    let _serialized = registry_guard();
    let path = unique_path("valid-outputs");
    let _ = std::fs::remove_file(&path);
    let graph = build(ModelKind::TinyCnn, 1, 16);
    let interpreter = Interpreter::from_graph(graph).unwrap();

    let mut untuned = interpreter.create_session(SessionConfig::cpu(1)).unwrap();
    let mut tuned = interpreter
        .create_session(tuned_config(&path, TuningMode::Full))
        .unwrap();

    let report = tuned.report().clone();
    assert!(report.tuned_nodes > 0, "TinyCnn has tunable convolutions");
    assert!(report.tuning_measured_candidates > 0);
    assert_eq!(report.cost_skipped_nodes, 0);
    let measured: Vec<_> = report.placements.iter().filter(|p| p.is_tuned()).collect();
    assert_eq!(measured.len(), report.tuned_nodes);
    for p in &measured {
        let ms = p.measured_cost_ms.unwrap();
        assert!(ms.is_finite() && ms >= 0.0);
    }
    // The rendered table carries the measured column.
    let rendered = report.to_string();
    assert!(rendered.contains("meas ms"));
    assert!(rendered.contains("nodes tuned"));

    // Outputs agree with the untuned reference within kernel tolerance
    // (different schemes round differently, so not bit-identical).
    let input = deterministic_input(16, 5);
    let want = untuned.run_with(&[("data", &input)]).unwrap();
    let got = tuned.run_with(&[("data", &input)]).unwrap();
    assert_eq!(got[0].shape(), want[0].shape());
    assert!(got[0].max_abs_diff(&want[0]) < 1e-2);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn warm_persistent_cache_performs_zero_measurements() {
    let _serialized = registry_guard();
    let path = unique_path("warm-start");
    let _ = std::fs::remove_file(&path);
    let graph = build(ModelKind::TinyCnn, 1, 16);
    let interpreter = Interpreter::from_graph(graph).unwrap();

    // "Process" 1: tunes and persists.
    let cold = interpreter
        .create_session(tuned_config(&path, TuningMode::Full))
        .unwrap();
    let cold_stats = cold.tuning_stats().unwrap();
    assert!(cold_stats.measured_candidates > 0);
    assert!(!cold_stats.loaded_from_disk);
    let cold_schemes: Vec<_> = cold.report().placements.iter().map(|p| p.scheme).collect();
    let cold_tuned_nodes = cold.report().tuned_nodes;
    drop(cold);

    // Simulate a fresh process: drop the in-process shared caches so the next
    // session must re-open — and therefore re-load — the persisted file.
    tune::clear_process_caches();

    let warm = interpreter
        .create_session(tuned_config(&path, TuningMode::Full))
        .unwrap();
    let warm_stats = warm.tuning_stats().unwrap();
    assert!(warm_stats.loaded_from_disk, "cache file was loaded");
    assert_eq!(
        warm_stats.measured_candidates, 0,
        "a warm persistent cache must skip measurement entirely"
    );
    assert_eq!(warm.report().tuning_measured_candidates, 0);
    assert_eq!(warm.report().tuned_nodes, cold_tuned_nodes);
    let warm_schemes: Vec<_> = warm.report().placements.iter().map(|p| p.scheme).collect();
    assert_eq!(
        cold_schemes, warm_schemes,
        "warm plan equals the tuned plan"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn session_pool_workers_share_one_tuning_pass() {
    let _serialized = registry_guard();
    // Reference: how many candidates ONE session measures on its own path.
    let solo_path = unique_path("pool-solo");
    let _ = std::fs::remove_file(&solo_path);
    let graph = build(ModelKind::TinyCnn, 1, 16);
    let interpreter = Interpreter::from_graph(graph.clone()).unwrap();
    let solo = interpreter
        .create_session(tuned_config(&solo_path, TuningMode::Full))
        .unwrap();
    let solo_measured = solo.tuning_stats().unwrap().measured_candidates;
    assert!(solo_measured > 0);
    drop(solo);

    // A pool of 4 workers on its own path: same measurement count as one
    // session — the later workers hit the shared in-memory cache.
    let pool_path = unique_path("pool-shared");
    let _ = std::fs::remove_file(&pool_path);
    let pool =
        SessionPool::new(&interpreter, tuned_config(&pool_path, TuningMode::Full), 4).unwrap();
    let worker = pool.acquire();
    let pool_stats = worker.tuning_stats().unwrap();
    assert_eq!(
        pool_stats.measured_candidates, solo_measured,
        "4 pooled workers must tune exactly once, not 4 times"
    );
    assert!(
        pool_stats.cache_hits > 0,
        "later workers hit the shared cache"
    );
    let _ = std::fs::remove_file(&solo_path);
    let _ = std::fs::remove_file(&pool_path);
}

#[test]
fn cached_mode_never_measures_and_falls_back_to_the_cost_model() {
    let _serialized = registry_guard();
    let path = unique_path("cached-mode");
    let _ = std::fs::remove_file(&path);
    let graph = build(ModelKind::TinyCnn, 1, 16);
    let interpreter = Interpreter::from_graph(graph).unwrap();

    // Empty cache + Cached mode: zero measurements, cost-model plan.
    let mut session = interpreter
        .create_session(tuned_config(&path, TuningMode::Cached))
        .unwrap();
    let stats = session.tuning_stats().unwrap();
    assert_eq!(stats.measured_candidates, 0);
    assert_eq!(session.report().tuned_nodes, 0);
    assert!(stats.cache_misses > 0, "lookups happened, all missed");
    let out = session
        .run_with(&[("data", &deterministic_input(16, 1))])
        .unwrap();
    assert_eq!(out[0].shape().dims(), &[1, 10]);

    // Warm the cache with a Full session, then Cached mode uses it.
    let _full = interpreter
        .create_session(tuned_config(&path, TuningMode::Full))
        .unwrap();
    let warm_cached = interpreter
        .create_session(tuned_config(&path, TuningMode::Cached))
        .unwrap();
    assert!(warm_cached.report().tuned_nodes > 0);
    assert_eq!(warm_cached.report().tuning_measured_candidates, 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fingerprint_mismatch_forces_a_retune() {
    let _serialized = registry_guard();
    let path = unique_path("fingerprint-mismatch");
    let _ = std::fs::remove_file(&path);
    let graph = build(ModelKind::TinyCnn, 1, 16);
    let interpreter = Interpreter::from_graph(graph).unwrap();

    // Tune with 1 thread and persist.
    let one = interpreter
        .create_session(tuned_config(&path, TuningMode::Full))
        .unwrap();
    assert!(one.tuning_stats().unwrap().measured_candidates > 0);
    drop(one);
    tune::clear_process_caches();

    // A 2-thread session has a different device fingerprint: the persisted
    // file is ignored and the engine re-tunes rather than trusting foreign
    // measurements.
    let two = interpreter
        .create_session(
            SessionConfig::builder()
                .threads(2)
                .tuning(TuningMode::Full)
                .tune_cache_path(&path)
                .build(),
        )
        .unwrap();
    let stats = two.tuning_stats().unwrap();
    assert!(!stats.loaded_from_disk);
    assert!(stats.measured_candidates > 0, "foreign cache => re-tune");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_cache_file_degrades_to_a_retune_not_a_panic() {
    let _serialized = registry_guard();
    let path = unique_path("corrupt");
    std::fs::write(&path, "not json at all {{{").unwrap();
    let graph = build(ModelKind::TinyCnn, 1, 16);
    let interpreter = Interpreter::from_graph(graph).unwrap();
    let session = interpreter
        .create_session(tuned_config(&path, TuningMode::Full))
        .unwrap();
    let stats = session.tuning_stats().unwrap();
    assert!(!stats.loaded_from_disk);
    assert!(stats.measured_candidates > 0);
    // The re-tune overwrote the corrupt file with a valid one.
    drop(session);
    tune::clear_process_caches();
    let warm = interpreter
        .create_session(tuned_config(&path, TuningMode::Full))
        .unwrap();
    assert!(warm.tuning_stats().unwrap().loaded_from_disk);
    assert_eq!(warm.tuning_stats().unwrap().measured_candidates, 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resize_retunes_the_new_geometry_and_caches_plans() {
    let _serialized = registry_guard();
    let path = unique_path("resize");
    let _ = std::fs::remove_file(&path);
    let mut b = mnn::GraphBuilder::new("fcn");
    let x = b.input("x", Shape::nchw(1, 3, 16, 16));
    let y = b.conv2d_auto("conv", x, mnn::graph::Conv2dAttrs::same_3x3(3, 8), true);
    let interpreter = Interpreter::from_graph(b.build(vec![y])).unwrap();
    let mut session = interpreter
        .create_session(tuned_config(&path, TuningMode::Full))
        .unwrap();
    let first = session.tuning_stats().unwrap().measured_candidates;
    assert!(first > 0);

    // New geometry = new signatures: the resize re-plans AND re-tunes.
    session
        .resize_input("x", Shape::nchw(1, 3, 24, 24))
        .unwrap();
    session.resize_session().unwrap();
    let after_resize = session.tuning_stats().unwrap().measured_candidates;
    assert!(after_resize > first, "new geometry was measured");
    assert!(session.report().tuned_nodes > 0);

    // Back to the original geometry: plan cache hit, no further measurements.
    session
        .resize_input("x", Shape::nchw(1, 3, 16, 16))
        .unwrap();
    session.resize_session().unwrap();
    assert_eq!(session.plan_cache_hits(), 1);
    assert_eq!(
        session.tuning_stats().unwrap().measured_candidates,
        after_resize
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn quantized_graphs_tune_over_integer_and_float_candidates() {
    let _serialized = registry_guard();
    let path = unique_path("quantized");
    let _ = std::fs::remove_file(&path);
    let mut graph = build(ModelKind::TinyCnn, 1, 16);
    optimize(&mut graph, OptimizerOptions::default());
    quantize_weights(&mut graph);
    let interpreter = Interpreter::from_graph(graph).unwrap();
    let session = interpreter
        .create_session(tuned_config(&path, TuningMode::Full))
        .unwrap();
    let report = session.report();
    assert!(report.tuned_nodes > 0);
    // Every tuned quantized conv picked SOME measured scheme and reports it.
    for p in report.placements.iter().filter(|p| p.is_tuned()) {
        assert!(p.scheme.is_some());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cache_hits_are_validated_against_the_current_candidate_pool() {
    let _serialized = registry_guard();
    // Tune under the default Winograd cap (tiles up to 6)...
    let path = unique_path("pool-validation");
    let _ = std::fs::remove_file(&path);
    let mut b = mnn::GraphBuilder::new("wino");
    let x = b.input("x", Shape::nchw(1, 16, 32, 32));
    let y = b.conv2d_auto("conv", x, mnn::graph::Conv2dAttrs::same_3x3(16, 16), true);
    let interpreter = Interpreter::from_graph(b.build(vec![y])).unwrap();
    let wide = interpreter
        .create_session(tuned_config(&path, TuningMode::Full))
        .unwrap();
    assert!(wide.tuning_stats().unwrap().measured_candidates > 0);
    drop(wide);
    tune::clear_process_caches();

    // ...then plan with a tighter cap: a cached winograd-F(n>2) entry must not
    // leak through — the restricted session re-tunes within its own pool.
    let narrow = interpreter
        .create_session(
            SessionConfig::builder()
                .threads(1)
                .max_winograd_tile(2)
                .tuning(TuningMode::Full)
                .tune_cache_path(&path)
                .build(),
        )
        .unwrap();
    for p in &narrow.report().placements {
        if let Some(mnn::ConvScheme::Winograd { tile }) = p.scheme {
            assert!(
                tile <= 2,
                "cache hit bypassed max_winograd_tile: F({tile}x{tile})"
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}
