//! Integration tests for the owned-session API: named I/O, dynamic input
//! resizing with the pre-inference cache, and cross-thread session ownership.

use mnn::models::{build, ModelKind};
use mnn::tensor::{Shape, Tensor};
use mnn::{ForwardType, Interpreter, SessionConfig};

fn deterministic_input(size: usize) -> Tensor {
    Tensor::from_vec(
        Shape::nchw(1, 3, size, size),
        (0..3 * size * size)
            .map(|i| ((i % 37) as f32 - 18.0) * 0.03)
            .collect(),
    )
}

#[test]
fn named_io_matches_positional_io_on_a_zoo_model() {
    let graph = build(ModelKind::TinyCnn, 1, 32);
    let interpreter = Interpreter::from_graph(graph).unwrap();
    let mut a = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let mut b = interpreter
        .create_session(
            SessionConfig::builder()
                .threads(2)
                .forward(ForwardType::Cpu)
                .build(),
        )
        .unwrap();
    let input = deterministic_input(32);

    let positional = a.run(std::slice::from_ref(&input)).unwrap();
    let named = b.run_with(&[("data", &input)]).unwrap();
    assert_eq!(positional[0].data_f32(), named[0].data_f32());
    assert_eq!(
        b.output("prob").unwrap().data_f32(),
        positional[0].data_f32()
    );
}

#[test]
fn resize_session_end_to_end_on_a_zoo_model() {
    // TinyCnn is resize-friendly: global average pooling in front of the
    // classifier makes the head geometry-independent.
    let graph = build(ModelKind::TinyCnn, 1, 32);
    let interpreter = Interpreter::from_graph(graph).unwrap();
    let mut session = interpreter.create_session(SessionConfig::cpu(2)).unwrap();
    let report_32 = session.report().clone();
    session.run(&[deterministic_input(32)]).unwrap();

    // Grow to 48x48: pre-inference must re-plan for the new geometry.
    session
        .resize_input("data", Shape::nchw(1, 3, 48, 48))
        .unwrap();
    session.resize_session().unwrap();
    let report_48 = session.report().clone();
    assert!(!report_48.from_cache);
    assert!(report_48.planned_memory_elements > report_32.planned_memory_elements);
    assert!(report_48.estimated_total_ms > report_32.estimated_total_ms);
    let out = session
        .run_with(&[("data", &deterministic_input(48))])
        .unwrap();
    assert_eq!(out[0].shape().dims(), &[1, 10]);

    // A fresh session built directly at 48x48 must agree bit-for-bit.
    let fresh_interpreter = Interpreter::from_graph(build(ModelKind::TinyCnn, 1, 48)).unwrap();
    let mut fresh = fresh_interpreter
        .create_session(SessionConfig::cpu(2))
        .unwrap();
    let fresh_out = fresh
        .run_with(&[("data", &deterministic_input(48))])
        .unwrap();
    assert_eq!(out[0].data_f32(), fresh_out[0].data_f32());

    // Back to 32x32: the second resize to a previously-seen shape must be served
    // from the pre-inference cache and reproduce the original decisions.
    session
        .resize_input("data", Shape::nchw(1, 3, 32, 32))
        .unwrap();
    session.resize_session().unwrap();
    assert_eq!(session.plan_cache_hits(), 1);
    assert!(session.report().from_cache);
    assert_eq!(
        session.report().planned_memory_elements,
        report_32.planned_memory_elements
    );
    for (now, before) in session
        .report()
        .placements
        .iter()
        .zip(&report_32.placements)
    {
        assert_eq!(now.scheme, before.scheme);
        assert_eq!(now.forward_type, before.forward_type);
    }
    let out = session.run(&[deterministic_input(32)]).unwrap();
    assert_eq!(out[0].shape().dims(), &[1, 10]);
}

#[test]
fn owned_sessions_serve_from_worker_threads() {
    let interpreter = Interpreter::from_graph(build(ModelKind::TinyCnn, 1, 32)).unwrap();
    let expected = interpreter
        .create_session(SessionConfig::cpu(1))
        .unwrap()
        .run(&[deterministic_input(32)])
        .unwrap();

    // Sessions share weights through the interpreter's Arc but are owned: move
    // one to each worker thread and drop the interpreter while they run.
    let sessions: Vec<_> = (0..3)
        .map(|_| interpreter.create_session(SessionConfig::cpu(1)).unwrap())
        .collect();
    drop(interpreter);
    let handles: Vec<_> = sessions
        .into_iter()
        .map(|mut session| {
            std::thread::spawn(move || {
                session
                    .run_with(&[("data", &deterministic_input(32))])
                    .unwrap()
            })
        })
        .collect();
    for handle in handles {
        let got = handle.join().unwrap();
        assert_eq!(got[0].data_f32(), expected[0].data_f32());
    }
}
