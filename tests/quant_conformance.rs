//! Float-vs-quantized conformance suite.
//!
//! For every model in the zoo the same deterministic input is pushed through the
//! float graph and through the int8-quantized graph; the quantized run must
//!
//! * execute real integer kernels (the pre-inference report shows the
//!   `quantized-gemm` scheme and the weight constants are `i8`),
//! * agree with the float run on the top-1 class,
//! * stay within a per-element output tolerance **derived from
//!   `quantization_error_bound`** (see [`derived_output_tolerance`]),
//! * and behave identically on a fresh session and after a
//!   `resize_input` + `resize_session` round-trip (bit-identical to the fresh
//!   quantized run, since the geometry ends where it started).

use mnn::backend::ConvScheme;
use mnn::converter::{optimize, quantize_weights, OptimizerOptions};
use mnn::models::{build, ModelKind};
use mnn::tensor::{DataType, Shape, Tensor};
use mnn::{Interpreter, Session, SessionConfig};

/// (model, resolution used by the suite, alternate resolution for the resize
/// round-trip). Resolutions are reduced so the debug-mode test binary stays
/// fast; the architectures are unchanged.
const MODELS: [(ModelKind, usize, usize); 5] = [
    (ModelKind::TinyCnn, 16, 24),
    (ModelKind::MobileNetV1, 32, 48),
    (ModelKind::SqueezeNetV1_1, 48, 32),
    (ModelKind::ResNet18, 32, 48),
    (ModelKind::InceptionV3, 80, 88),
];

fn deterministic_input(shape: Shape, seed: u64) -> Tensor {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let data = (0..shape.num_elements())
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        })
        .collect();
    Tensor::from_vec(shape, data)
}

/// Per-element output tolerance derived from `quantization_error_bound`.
///
/// For symmetric int8 with scale `s = max_abs / 127`, the kernel-level bound
/// `quantization_error_bound(params) = s / 2` gives a *relative* error of
/// `(s / 2) / max_abs = 1 / 254` per quantized operand. Each quantized layer
/// quantizes two operands (weights offline, activations on the fly), so it
/// contributes at most `2 / 254` relative error to the values flowing through
/// it. Outputs are post-softmax probabilities in `[0, 1]`, so the accumulated
/// relative bound doubles as an absolute per-element tolerance:
///
/// `tol = quantized_layer_count * 2 / 254`
fn derived_output_tolerance(quantized_graph: &mnn::Graph) -> f32 {
    let quantized_layers = quantized_graph
        .nodes()
        .iter()
        .filter(|n| n.op.is_quantized())
        .count();
    assert!(quantized_layers > 0, "graph has no quantized layers");
    quantized_layers as f32 * 2.0 / 254.0
}

fn top1(t: &Tensor) -> usize {
    t.data_f32()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(i, _)| i)
        .unwrap()
}

fn session(graph: mnn::Graph) -> Session {
    Interpreter::from_graph(graph)
        .expect("interpreter")
        .create_session(SessionConfig::cpu(4))
        .expect("session")
}

fn assert_model_conformance(kind: ModelKind, size: usize, alt_size: usize) {
    let mut float_graph = build(kind, 1, size);
    optimize(&mut float_graph, OptimizerOptions::default());
    let mut quant_graph = float_graph.clone();
    let report = quantize_weights(&mut quant_graph);
    assert!(
        report.compression_ratio() >= 3.5,
        "{kind}: weight compression {:.2}x below 3.5x",
        report.compression_ratio()
    );
    // Quantized weights really are stored as i8 constants.
    for node in quant_graph.nodes() {
        if node.op.is_quantized() {
            assert_eq!(
                quant_graph.constant(node.inputs[1]).unwrap().data_type(),
                DataType::I8,
                "{kind}: node '{}' weight is not i8",
                node.name
            );
        }
    }
    let tolerance = derived_output_tolerance(&quant_graph);

    let mut float_session = session(float_graph);
    let mut quant_session = session(quant_graph);

    // Every quantized conv/FC (except the deterministic depthwise f32 fallback)
    // is planned onto the integer kernel.
    let quantized_gemm_layers = quant_session
        .report()
        .placements
        .iter()
        .filter(|p| p.scheme == Some(ConvScheme::QuantizedGemm))
        .count();
    assert!(
        quantized_gemm_layers > 0,
        "{kind}: no layer selected the quantized-gemm scheme"
    );

    let input = deterministic_input(Shape::nchw(1, 3, size, size), 42);

    // --- Fresh sessions ---------------------------------------------------
    let float_out = float_session.run_with(&[("data", &input)]).unwrap();
    let quant_out = quant_session.run_with(&[("data", &input)]).unwrap();
    assert_eq!(float_out.len(), quant_out.len());
    let diff = float_out[0].max_abs_diff(&quant_out[0]);
    assert!(
        diff <= tolerance,
        "{kind}: per-element diff {diff} exceeds derived tolerance {tolerance}"
    );
    assert_eq!(
        top1(&float_out[0]),
        top1(&quant_out[0]),
        "{kind}: top-1 disagrees between float and quantized runs"
    );

    // --- After a resize round-trip ---------------------------------------
    for s in [&mut float_session, &mut quant_session] {
        s.resize_input("data", Shape::nchw(1, 3, alt_size, alt_size))
            .unwrap();
        s.resize_session().unwrap();
        s.resize_input("data", Shape::nchw(1, 3, size, size))
            .unwrap();
        s.resize_session().unwrap();
    }
    let float_rt = float_session.run_with(&[("data", &input)]).unwrap();
    let quant_rt = quant_session.run_with(&[("data", &input)]).unwrap();
    assert_eq!(
        quant_rt[0].data_f32(),
        quant_out[0].data_f32(),
        "{kind}: quantized outputs changed bits across a resize round-trip"
    );
    let diff = float_rt[0].max_abs_diff(&quant_rt[0]);
    assert!(
        diff <= tolerance,
        "{kind}: post-resize diff {diff} exceeds derived tolerance {tolerance}"
    );
    assert_eq!(
        top1(&float_rt[0]),
        top1(&quant_rt[0]),
        "{kind}: top-1 disagrees after the resize round-trip"
    );
}

#[test]
fn tiny_cnn_float_vs_quantized_conformance() {
    let (kind, size, alt) = MODELS[0];
    assert_model_conformance(kind, size, alt);
}

#[test]
fn mobilenet_float_vs_quantized_conformance() {
    let (kind, size, alt) = MODELS[1];
    assert_model_conformance(kind, size, alt);
}

#[test]
fn squeezenet_float_vs_quantized_conformance() {
    let (kind, size, alt) = MODELS[2];
    assert_model_conformance(kind, size, alt);
}

#[test]
fn resnet_float_vs_quantized_conformance() {
    let (kind, size, alt) = MODELS[3];
    assert_model_conformance(kind, size, alt);
}

#[test]
fn inception_float_vs_quantized_conformance() {
    let (kind, size, alt) = MODELS[4];
    assert_model_conformance(kind, size, alt);
}

/// MobileNet's 13 depthwise layers ride inside the quantized graph: they must be
/// deterministically planned onto the f32 depthwise kernel (weights dequantized
/// once at preparation), never the integer kernel, and the model must still pass
/// conformance — the regression guard for `conv2d_quantized`'s former
/// `groups != 1` panic.
#[test]
fn quantized_mobilenet_keeps_depthwise_layers_in_f32() {
    let mut graph = build(ModelKind::MobileNetV1, 1, 32);
    optimize(&mut graph, OptimizerOptions::default());
    quantize_weights(&mut graph);
    let depthwise: Vec<String> = graph
        .nodes()
        .iter()
        .filter(|n| n.op.is_quantized() && n.op.conv_attrs().map(|a| a.groups > 1).unwrap_or(false))
        .map(|n| n.name.clone())
        .collect();
    assert_eq!(depthwise.len(), 13, "MobileNet-v1 has 13 depthwise layers");

    let session = session(graph);
    for placement in &session.report().placements {
        if depthwise.contains(&placement.name) {
            assert_eq!(
                placement.scheme,
                Some(ConvScheme::Depthwise),
                "depthwise layer '{}' must fall back to the f32 depthwise kernel",
                placement.name
            );
        }
    }
    // And pointwise neighbours still use the integer kernel.
    assert!(session
        .report()
        .placements
        .iter()
        .any(|p| p.scheme == Some(ConvScheme::QuantizedGemm)));
}

/// The depthwise f32 fallback still computes correct results inside a quantized
/// graph (the direct kernel-level regression test for grouped quantized convs
/// lives in `mnn-kernels`; this covers the end-to-end dispatch).
#[test]
fn grouped_conv_inside_quantized_graph_matches_float_within_tolerance() {
    use mnn::graph::{Conv2dAttrs, GraphBuilder};
    let build_graph = || {
        let mut b = GraphBuilder::new("dw");
        let x = b.input("data", Shape::nchw(1, 8, 12, 12));
        let y = b.conv2d_auto("dw3x3", x, Conv2dAttrs::depthwise_3x3(8, 1), true);
        let y = b.conv2d_auto("pw", y, Conv2dAttrs::pointwise(8, 16), false);
        b.build(vec![y])
    };
    let float_graph = build_graph();
    let mut quant_graph = float_graph.clone();
    quantize_weights(&mut quant_graph);
    let tolerance = derived_output_tolerance(&quant_graph);

    let input = deterministic_input(Shape::nchw(1, 8, 12, 12), 7);
    let float_out = session(float_graph).run_with(&[("data", &input)]).unwrap();
    let quant_out = session(quant_graph).run_with(&[("data", &input)]).unwrap();
    let diff = float_out[0].max_abs_diff(&quant_out[0]);
    // Raw conv outputs are not probabilities; scale the derived relative bound
    // by the float output magnitude.
    let max_mag = float_out[0]
        .data_f32()
        .iter()
        .fold(0.0f32, |m, v| m.max(v.abs()));
    assert!(
        diff <= tolerance * max_mag.max(1.0),
        "diff {diff} exceeds {tolerance} x magnitude {max_mag}"
    );
}
