//! # MNN-rs — a Rust reproduction of *MNN: A Universal and Efficient Inference Engine* (MLSys 2020)
//!
//! This facade crate re-exports the whole workspace so applications can depend on a
//! single crate:
//!
//! * [`tensor`] — tensors, shapes, and the NC4HW4 data layout.
//! * [`kernels`] — CPU compute kernels: GEMM, Strassen, the Winograd generator and
//!   convolution, pooling, activations, quantized ops.
//! * [`graph`] — the computational-graph IR and builder.
//! * [`converter`] — offline conversion: model format, graph optimizer, quantizer.
//! * [`backend`] — the `Backend` abstraction, memory pool, CPU backend and simulated
//!   GPU backends.
//! * [`core`] — pre-inference (scheme selection, backend cost evaluation, memory
//!   planning), the `Interpreter`/`Session` API and hybrid scheduling.
//! * [`models`] — the model zoo (MobileNet, SqueezeNet, ResNet, Inception-v3).
//! * [`device_sim`] — device profiles and competitor-engine cost models used by the
//!   paper-reproduction experiments.
//!
//! The most common entry points are re-exported at the top level.
//!
//! ```
//! use mnn::{Interpreter, SessionConfig};
//! use mnn::models::{build, ModelKind};
//! use mnn::tensor::{Shape, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = build(ModelKind::TinyCnn, 1, 32);
//! let interpreter = Interpreter::from_graph(graph)?;
//! let mut session = interpreter.create_session(SessionConfig::cpu(2))?;
//! let outputs = session.run(&[Tensor::zeros(Shape::nchw(1, 3, 32, 32))])?;
//! assert_eq!(outputs[0].shape().dims(), &[1, 10]);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

/// Tensors, shapes, data types and layouts (re-export of `mnn-tensor`).
pub use mnn_tensor as tensor;

/// CPU compute kernels (re-export of `mnn-kernels`).
pub use mnn_kernels as kernels;

/// Computational-graph IR (re-export of `mnn-graph`).
pub use mnn_graph as graph;

/// Offline conversion, optimization and quantization (re-export of `mnn-converter`).
pub use mnn_converter as converter;

/// Backend abstraction and implementations (re-export of `mnn-backend`).
pub use mnn_backend as backend;

/// Engine core: pre-inference and sessions (re-export of `mnn-core`).
pub use mnn_core as core;

/// Model zoo (re-export of `mnn-models`).
pub use mnn_models as models;

/// Device profiles and engine cost models (re-export of `mnn-device-sim`).
pub use mnn_device_sim as device_sim;

pub use mnn_backend::{ConvScheme, ForwardType, GpuProfile};
pub use mnn_core::{Interpreter, PreInferenceReport, Session, SessionConfig};
pub use mnn_graph::{Graph, GraphBuilder};
pub use mnn_tensor::{Shape, Tensor};
