//! # MNN-rs — a Rust reproduction of *MNN: A Universal and Efficient Inference Engine* (MLSys 2020)
//!
//! This facade crate re-exports the whole workspace so applications can depend on a
//! single crate:
//!
//! * [`tensor`] — tensors, shapes, and the NC4HW4 data layout.
//! * [`kernels`] — CPU compute kernels: GEMM, Strassen, the Winograd generator and
//!   convolution, pooling, activations, quantized ops.
//! * [`graph`] — the computational-graph IR and builder.
//! * [`converter`] — offline conversion: model format, graph optimizer, quantizer.
//! * [`backend`] — the `Backend` abstraction, memory pool, CPU backend and simulated
//!   GPU backends.
//! * [`core`] — pre-inference (scheme selection, backend cost evaluation, memory
//!   planning), the `Interpreter`/`Session` API and hybrid scheduling.
//! * [`models`] — the model zoo (MobileNet, SqueezeNet, ResNet, Inception-v3).
//! * [`device_sim`] — device profiles and competitor-engine cost models used by the
//!   paper-reproduction experiments.
//! * [`serve`] — the concurrent serving runtime: session pooling, a bounded request
//!   queue with backpressure, and dynamic micro-batching.
//! * [`http`] — the network serving frontend: a hand-rolled HTTP/1.1 server with a
//!   multi-model registry, JSON tensor codec, admission control and graceful drain.
//! * [`obs`] — the observability layer: an opt-in per-op runtime profiler, the
//!   process-wide metrics registry behind `GET /metrics`, and the leveled log
//!   facade every crate routes diagnostics through.
//!
//! # The session flow
//!
//! An [`Interpreter`] validates a graph, infers its shapes and holds it behind an
//! `Arc`. [`Interpreter::create_session`] runs **pre-inference** (paper Fig. 2) —
//! per-convolution scheme selection, hybrid backend scheduling and the static
//! memory plan — and returns an **owned** [`Session`]: it shares the weights with
//! the interpreter, may outlive it, and is `Send`, so worker threads can each own
//! one. Configure sessions with the [`SessionConfig::builder`]; address tensors by
//! name; resize inputs dynamically with `resize_input` + `resize_session`:
//!
//! ```
//! use mnn::{ForwardType, Interpreter, SessionConfig};
//! use mnn::models::{build, ModelKind};
//! use mnn::tensor::{Shape, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = build(ModelKind::TinyCnn, 1, 32);
//! let interpreter = Interpreter::from_graph(graph)?;
//!
//! // Builder-style configuration (new knobs never break this call).
//! let config = SessionConfig::builder()
//!     .threads(2)
//!     .forward(ForwardType::Cpu)
//!     .build();
//! let mut session = interpreter.create_session(config)?;
//!
//! // Named I/O: fill the staged input, run, read the named output.
//! *session.input_mut("data")? = Tensor::zeros(Shape::nchw(1, 3, 32, 32));
//! session.run_session()?;
//! assert_eq!(session.output("prob")?.shape().dims(), &[1, 10]);
//!
//! // One-shot named runs work too:
//! let outputs = session.run_with(&[("data", &Tensor::zeros(Shape::nchw(1, 3, 32, 32)))])?;
//! assert_eq!(outputs[0].shape().dims(), &[1, 10]);
//! # Ok(())
//! # }
//! ```
//!
//! ## Dynamic input resizing
//!
//! Pre-inference is a function of the input geometry. When input shapes change,
//! stage the new shapes and re-plan — plans are cached per shape signature, so
//! alternating between known geometries never re-plans:
//!
//! ```
//! use mnn::{Interpreter, SessionConfig};
//! use mnn::graph::{Conv2dAttrs, GraphBuilder};
//! use mnn::tensor::{Shape, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new("fcn");
//! let x = b.input("x", Shape::nchw(1, 3, 32, 32));
//! let y = b.conv2d_auto("conv", x, Conv2dAttrs::same_3x3(3, 8), true);
//! let interpreter = Interpreter::from_graph(b.build(vec![y]))?;
//! let mut session = interpreter.create_session(SessionConfig::cpu(2))?;
//!
//! session.resize_input("x", Shape::nchw(1, 3, 64, 64))?;
//! session.resize_session()?; // re-runs shape inference, schemes, memory plan
//! let out = session.run_with(&[("x", &Tensor::zeros(Shape::nchw(1, 3, 64, 64)))])?;
//! assert_eq!(out[0].shape().dims(), &[1, 8, 64, 64]);
//!
//! session.resize_input("x", Shape::nchw(1, 3, 32, 32))?;
//! session.resize_session()?; // previously-seen shape: served from the plan cache
//! assert_eq!(session.plan_cache_hits(), 1);
//! # Ok(())
//! # }
//! ```
//!
//! The positional [`Session::run`] path (`session.run(&[tensor])`) is kept as a
//! thin compatibility wrapper over the named flow and is considered deprecated:
//! prefer [`Session::run_with`] or [`Session::input_mut`] +
//! [`Session::run_session`], which stay stable when a model's input order
//! changes.
//!
//! ## Quantization
//!
//! The model compressor quantizes convolution and fully-connected weights to
//! symmetric int8 with **per-output-channel** scales, stores them as real `i8`
//! constants (≈4× smaller weights), and rewrites the nodes to quantized
//! operator variants. The runtime then executes those layers on **integer
//! kernels**: pre-inference selects the `quantized-gemm` scheme (visible in the
//! [`PreInferenceReport`]), activations are quantized on the fly — per sample,
//! so micro-batched serving stays bit-identical to unbatched runs — and
//! accumulation is exact in `i32` with an `f32` rescale at each layer output.
//!
//! Run [`converter::optimize`](mnn_converter::optimize) *before*
//! [`converter::quantize_weights`](mnn_converter::quantize_weights) so BN
//! folding and activation fusion happen on the float graph; the fused
//! activation is carried into the quantized node. Depthwise convolutions are
//! the deliberate exception: they stay on the f32 depthwise kernel (their
//! weights are dequantized once at preparation time) because one input channel
//! per group leaves no integer-GEMM reuse to exploit — on SIMD hosts the tuner
//! still chooses between its scalar and vectorized forms. Everything
//! else — dynamic resizing, the per-signature plan cache, [`SessionPool`] and
//! `mnn-serve` micro-batching — composes with quantized graphs unchanged.
//!
//! Expected accuracy: symmetric per-channel int8 keeps each quantized operand
//! within 1/254 relative error; the conformance suite
//! (`tests/quant_conformance.rs`) checks top-1 agreement with the float model
//! across the zoo. Size/speed: ~3.9–4.0× smaller weights, and the int8
//! im2col+GEMM path outruns the float schemes on GEMM-dominated models (see
//! the `table_quant` bench bin).
//!
//! ```
//! use mnn::converter::{optimize, quantize_weights, OptimizerOptions};
//! use mnn::models::{build, ModelKind};
//! use mnn::tensor::{Shape, Tensor};
//! use mnn::{ConvScheme, Interpreter, SessionConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut graph = build(ModelKind::TinyCnn, 1, 16);
//! optimize(&mut graph, OptimizerOptions::default());
//! let report = quantize_weights(&mut graph);
//! assert!(report.compression_ratio() > 3.5); // i8 payload + per-channel scales
//!
//! let interpreter = Interpreter::from_graph(graph)?;
//! let mut session = interpreter.create_session(SessionConfig::cpu(2))?;
//! // Conv/FC layers run the integer kernel:
//! assert!(session
//!     .report()
//!     .placements
//!     .iter()
//!     .any(|p| p.scheme == Some(ConvScheme::QuantizedGemm)));
//! let out = session.run_with(&[("data", &Tensor::zeros(Shape::nchw(1, 3, 16, 16)))])?;
//! assert_eq!(out[0].shape().dims(), &[1, 10]);
//! # Ok(())
//! # }
//! ```
//!
//! ## SIMD kernels
//!
//! The hot kernels — f32 GEMM, int8 GEMM, the Winograd transforms and the
//! depthwise convolution — have explicit `std::arch` implementations:
//! AVX2+FMA on x86_64 and NEON on aarch64, selected **at runtime** by
//! [`kernels::simd::KernelBackend::active`](mnn_kernels::simd::KernelBackend),
//! with the portable scalar kernels as the always-available fallback. Rather
//! than hard-switching, each vectorized kernel is registered as an additional
//! *tuning candidate* (`Im2colGemmSimd`, `WinogradSimd`, `QuantizedGemmSimd`,
//! `DepthwiseSimd` in [`ConvScheme`]), so auto-tuning decides scalar-vs-SIMD
//! empirically per layer; with tuning off, the cost model keeps choosing among
//! the scalar schemes only — SIMD placements are always measured, never
//! guessed.
//!
//! Two overrides exist: the `MNN_SIMD=scalar` environment variable forces the
//! scalar kernels process-wide (that is what the forced-scalar CI job sets),
//! and [`SessionConfigBuilder::force_scalar`](SessionConfig) pins a single
//! session to scalar by filtering its candidate pools. The chosen kernel set
//! (`scalar` / `avx2fma` / `neon`) is part of the tuning-cache device
//! fingerprint, so a cache tuned with SIMD kernels is never installed on a
//! host that lacks them. The conformance contract — int8 paths bit-identical
//! to scalar, f32 paths within a documented tolerance — is locked by
//! `crates/kernels/tests/simd_conformance.rs`.
//!
//! ```
//! use mnn::kernels::simd::{active_kernel_set, simd_available, KernelBackend};
//!
//! let kb = KernelBackend::active(); // detected once per process
//! assert!(kb.hw_supported());
//! assert_eq!(simd_available(), kb.is_simd());
//! assert_eq!(active_kernel_set(), kb.name()); // "scalar" | "avx2fma" | "neon"
//! ```
//!
//! ## Auto-tuning
//!
//! Scheme selection normally comes from the closed-form cost model (Eq. 2–3).
//! With **auto-tuning** the engine instead *measures*: at session preparation
//! time each convolution's viable kernels (sliding-window, im2col, every
//! Winograd tile, Strassen-1×1, the int8 GEMM for quantized layers) are
//! micro-benchmarked on the node's real geometry through the real backend, and
//! the fastest wins — the paper's semi-automated-search idea taken from
//! "estimate" to "measure", without TVM-style offline tuning loops.
//!
//! Results land in a **device-keyed cache** (architecture + SIMD features +
//! thread count + backend + active kernel set): all sessions of a process
//! share it — a
//! [`SessionPool`] or [`serve::Server`] pre-warms N workers with **one**
//! tuning pass — and with a cache path
//! ([`SessionConfigBuilder::tune_cache_path`](SessionConfig) or the
//! `MNN_TUNE_CACHE` environment variable) it persists, so the *next process*
//! prepares sessions with **zero** measurements. Stale, corrupt or
//! foreign-device files are ignored (re-tuned), never fatal. Modes:
//! [`TuningMode::Off`] (cost model only, the default), [`TuningMode::Cached`]
//! (use cached measurements, never measure) and [`TuningMode::Full`]
//! (measure on miss). [`PreInferenceReport`] shows measured-vs-estimated cost
//! per layer, and [`Session::tuning_stats`] exposes the cache counters.
//!
//! ```
//! use mnn::models::{build, ModelKind};
//! use mnn::{Interpreter, SessionConfig, TuningMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let interpreter = Interpreter::from_graph(build(ModelKind::TinyCnn, 1, 16))?;
//! let session = interpreter.create_session(
//!     SessionConfig::builder()
//!         .threads(1)
//!         .tuning(TuningMode::Full) // add .tune_cache_path(...) to persist
//!         .build(),
//! )?;
//! let report = session.report();
//! assert!(report.tuned_nodes > 0);
//! // Per-layer measured-vs-estimated table:
//! println!("{report}");
//! println!("{}", session.tuning_stats().unwrap());
//! # Ok(())
//! # }
//! ```
//!
//! The cost model itself is calibrated from the same harness
//! ([`tune::calibrate`]): the int8-vs-float discount shipped as
//! [`core::scheme::INT8_COST_FACTOR`](mnn_core::scheme::INT8_COST_FACTOR) is a
//! measured value, and [`CostModel`] lets a session override any constant
//! (e.g. with a re-calibration for its device, or pinned values in tests).
//!
//! ## Serving
//!
//! One owned session serves one request at a time; a [`Server`] serves many
//! concurrently. It pre-warms one session per worker thread from a shared graph
//! (a [`SessionPool`]), accepts requests through a **bounded** queue —
//! [`Server::submit`] fails fast with `QueueFull` instead of buffering without
//! bound — and **micro-batches** compatible requests: up to `max_batch`
//! same-signature requests arriving within the batch window are stacked along
//! the batch dimension ([`Tensor::stack_batch`](tensor::Tensor::stack_batch)),
//! run as a single inference, and scattered back to per-request handles. Each
//! batch size is one input geometry, so the per-signature plan cache makes the
//! batched resize an O(1) plan swap after first sight. Responses are
//! bit-identical to unbatched inference — samples are computed independently.
//!
//! ```
//! use mnn::serve::Server;
//! use mnn::models::{build, ModelKind};
//! use mnn::tensor::{Shape, Tensor};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::builder()
//!     .workers(2)
//!     .max_batch(4)
//!     .batch_window(Duration::from_millis(1))
//!     .build(build(ModelKind::TinyCnn, 1, 16))?;
//!
//! // Blocking call:
//! let input = Tensor::zeros(Shape::nchw(1, 3, 16, 16));
//! let outputs = server.infer(&[("data", &input)])?;
//! assert_eq!(outputs[0].shape().dims(), &[1, 10]);
//!
//! // Handle-based: submit a burst, await later; compatible requests coalesce.
//! let handles: Vec<_> = (0..8)
//!     .map(|_| server.submit(&[("data", &input)]))
//!     .collect::<Result<_, _>>()?;
//! for handle in handles {
//!     handle.wait()?;
//! }
//! println!("{}", server.stats()); // throughput, p50/p99, batch histogram
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/serve_throughput.rs` for a full closed-loop load comparing
//! `max_batch = 1` against micro-batching, and the `table_serving` benchmark
//! binary for the measured speedup.
//!
//! ## Serving over HTTP
//!
//! The [`http`] crate puts a network face on the serving runtime: an
//! [`HttpServer`](mnn_http::HttpServer) owns a
//! [`ModelRegistry`](mnn_http::ModelRegistry) — one [`serve::Server`] per
//! registered model, loaded from a manifest, a directory of `.mnnr` files, or
//! the zoo — and speaks HTTP/1.1 over `std::net` (no async runtime, no
//! external HTTP dependency). Tensors travel as JSON and round-trip f32
//! values bit-exactly, so wire responses match in-process inference.
//!
//! Routes: `GET /healthz`, `GET /readyz`, `GET /v1/status`, `GET /v1/models`,
//! `GET /v1/models/{name}/stats`, `POST /v1/models/{name}/infer`,
//! `GET /v1/traces`, `POST /admin/shutdown`. Admission control
//! is layered: a connection cap answers excess connections with `503`, and
//! the per-model bounded queue surfaces as `429` — both with `Retry-After`.
//! Graceful shutdown drains every accepted request within a deadline; none
//! are abandoned.
//!
//! ```
//! use mnn::http::{HttpConfig, HttpServer, ModelRegistry, ServeOptions};
//! use std::io::{Read, Write};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut registry = ModelRegistry::new();
//! registry.register_zoo(
//!     mnn::models::ModelKind::TinyCnn,
//!     16,
//!     &ServeOptions { workers: 1, ..ServeOptions::default() },
//! )?;
//! let server = HttpServer::bind("127.0.0.1:0", registry, HttpConfig::default())?;
//!
//! let mut client = std::net::TcpStream::connect(server.local_addr())?;
//! client.write_all(b"GET /v1/models HTTP/1.1\r\nConnection: close\r\n\r\n")?;
//! let mut reply = String::new();
//! client.read_to_string(&mut reply)?;
//! assert!(reply.contains(r#""name":"tiny-cnn""#));
//!
//! assert!(server.shutdown().drained);
//! # Ok(())
//! # }
//! ```
//!
//! The same server ships as the `mnn_http` binary
//! (`cargo run --release --bin mnn_http -- --zoo squeezenet=64`); see
//! `examples/http_client.rs` for a raw-socket client session and the
//! `table_http` benchmark binary for socket-level throughput numbers.
//!
//! ## Observability
//!
//! The [`obs`] crate is the engine's telemetry layer, in three parts that the
//! rest of the workspace is already instrumented with:
//!
//! * **Per-op runtime profiling** — attach a
//!   [`Profiler`](mnn_obs::Profiler) via
//!   [`SessionConfigBuilder::profiling`](SessionConfig) and every session run
//!   records one span per executed node (op, kernel scheme, placement, shape,
//!   wall time, bytes moved). When no profiler is attached — the default —
//!   the execution loop skips all timestamping; when attached but disabled,
//!   the cost is one atomic load per run. [`Profiler::report`] aggregates
//!   into a per-op-type table with hottest nodes and a coverage figure
//!   (how much of the measured wall time the spans account for), and
//!   [`Profiler::chrome_trace`] exports the raw spans as chrome://tracing
//!   JSON.
//! * **Process-wide metrics** — lock-free counters, gauges and histograms
//!   under stable `mnn_*` names ([`obs::metrics::names`](mnn_obs::metrics::names)),
//!   written by session preparation, the plan cache, the tuner, the serving
//!   queue/batcher/workers and the HTTP frontend, and rendered in Prometheus
//!   text exposition format — `GET /metrics` on `mnn_http` serves exactly
//!   [`obs::metrics::render_global`](mnn_obs::metrics::render_global).
//! * **A log facade** — leveled `error!`/`warn!`/`info!`/`debug!`/`trace!`
//!   macros with an `MNN_LOG` environment filter and a replaceable sink, so
//!   embedded uses can capture engine diagnostics instead of losing them to
//!   stderr.
//!
//! ```
//! use mnn::models::{build, ModelKind};
//! use mnn::obs::Profiler;
//! use mnn::tensor::{Shape, Tensor};
//! use mnn::{Interpreter, SessionConfig};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let profiler = Arc::new(Profiler::new());
//! profiler.set_enabled(true);
//! let interpreter = Interpreter::from_graph(build(ModelKind::TinyCnn, 1, 16))?;
//! let mut session = interpreter.create_session(
//!     SessionConfig::builder()
//!         .threads(1)
//!         .profiling(Arc::clone(&profiler))
//!         .build(),
//! )?;
//! session.run_with(&[("data", &Tensor::zeros(Shape::nchw(1, 3, 16, 16)))])?;
//!
//! let report = profiler.report();
//! assert_eq!(report.runs, 1);
//! assert!(report.ops.iter().any(|op| op.op.starts_with("Conv2d")));
//! println!("{report}"); // per-op table, hottest nodes first
//! assert!(profiler.chrome_trace().contains("traceEvents"));
//!
//! // Process-wide metrics render as Prometheus text (what GET /metrics serves):
//! let text = mnn::obs::metrics::render_global();
//! assert!(text.contains("mnn_session_prepare_total"));
//! assert!(text.contains("mnn_uptime_seconds"));
//! # Ok(())
//! # }
//! ```
//!
//! In the HTTP frontend the same profiler sits behind
//! `GET /v1/models/{name}/profile` (enable with `--profiling` or
//! [`ServeOptions::profiling`](mnn_http::ServeOptions)); append
//! `?format=trace` for the chrome://tracing export. See
//! `examples/profiled_inference.rs` for the profile table on a zoo model.
//!
//! ## Request tracing
//!
//! Profiling answers "where does *this model* spend time on average"; request
//! tracing answers "where did *this request* spend time". Every layer of the
//! serving stack participates: the HTTP frontend opens a trace per request
//! (adopting the client's W3C `traceparent` context when one is sent, so the
//! engine slots into an existing distributed trace), the queue stamps queue
//! wait, the micro-batcher attributes batch assembly / inference / scatter
//! and links the requests it coalesced under one batch span, and per-op
//! kernel spans nest under the inference stage. Completed waterfalls land in
//! a bounded [`FlightRecorder`](serve::FlightRecorder) — a ring of recent
//! traces plus an always-kept slow-request reservoir — and every response
//! echoes `X-Request-Id` and `traceparent`, including rejections. With
//! tracing disabled (`MNN_TRACE=off`) the request path pays one relaxed
//! atomic load.
//!
//! ```
//! use mnn::models::{build, ModelKind};
//! use mnn::serve::{FlightRecorder, Server, TraceContext};
//! use mnn::tensor::{Shape, Tensor};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let recorder = Arc::new(FlightRecorder::new());
//! let server = Server::builder()
//!     .workers(1)
//!     .trace_recorder(Arc::clone(&recorder))
//!     .build(build(ModelKind::TinyCnn, 1, 16))?;
//! let input = Tensor::zeros(Shape::nchw(1, 3, 16, 16));
//! server.infer(&[("data", &input)])?;
//!
//! // The trace is sealed a beat after the response; wait for it.
//! while recorder.completed() < 1 {
//!     std::thread::sleep(std::time::Duration::from_millis(1));
//! }
//! let trace = &recorder.recent()[0];
//! assert_eq!(trace.status, 200);
//! for stage in ["queue_wait", "batch_assembly", "inference", "scatter"] {
//!     assert!(trace.stages.iter().any(|s| s.name == stage));
//! }
//! assert!(!trace.ops.is_empty()); // kernel spans, stamped with the trace id
//! assert!(trace.coverage > 0.9);  // top-level stages tile the request
//!
//! // W3C trace-context round trip — what the HTTP frontend does per request:
//! let parent =
//!     TraceContext::parse_traceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
//!         .expect("valid traceparent");
//! assert_eq!(parent.trace_id_hex(), "0af7651916cd43dd8448eb211c80319c");
//! assert_eq!(parent.child().trace_id_hex(), parent.trace_id_hex());
//! # Ok(())
//! # }
//! ```
//!
//! Over HTTP the recorder is on by default (`--tracing off` or `MNN_TRACE=off`
//! disables it): `GET /v1/traces` lists retained waterfalls as JSON,
//! `?id=<trace id>` fetches one — the id to use comes off a response's
//! `X-Request-Id` header or a latency-histogram exemplar in `/metrics` —
//! and `?format=trace` exports chrome://tracing JSON. See
//! `examples/traced_request.rs` for an end-to-end session.
//!
//! ## Resource observability
//!
//! Where does the memory go, are the workers alive, and is the service
//! meeting its objective? Three pieces answer those, all surfaced at
//! `GET /v1/status` (and `/metrics`):
//!
//! * **The resource ledger** ([`obs::resources`](mnn_obs::resources)) — every
//!   allocation class charges bytes to a `(scope, component)` account:
//!   sessions account their planned arenas and parked plan-cache plans, the
//!   registry accounts each model's constants, the tuner its cache. Scopes
//!   default to the graph name, so `/v1/status` attributes resident bytes to
//!   the model a client addresses — `arena`, `constants`, `plan_cache` —
//!   next to the OS's own view (`VmRSS`, threads) for capacity planning.
//! * **The worker watchdog** — serve workers heartbeat at batch boundaries
//!   (idle / batching / running); a watchdog thread flags any non-idle worker
//!   silent past [`ServerBuilder::watchdog_deadline`](mnn_serve::ServerBuilder)
//!   (default 30 s). A stalled worker fails `GET /readyz` — the *readiness*
//!   probe load balancers poll, distinct from `/healthz` liveness — with a
//!   machine-readable reason, and clears on the next heartbeat.
//! * **SLO tracking** ([`obs::SloTracker`](mnn_obs::SloTracker)) — give a
//!   model a latency/availability objective
//!   ([`ServeOptions::slo`](mnn_http::ServeOptions)) and a ring of one-minute
//!   buckets tracks p99-vs-objective compliance, availability, and the error
//!   burn rate over the window.
//!
//! ```
//! use mnn::obs::resources::{account, scope_snapshot};
//! use mnn::obs::{SloConfig, SloTracker};
//!
//! // The ledger: components charge bytes under a scope; snapshots roll up.
//! let arena = account("facade-doc-model", "arena");
//! arena.set(4096);
//! let scope = scope_snapshot("facade-doc-model");
//! assert_eq!(scope.resident_bytes, 4096);
//! assert_eq!(scope.components[0].component, "arena");
//!
//! // The SLO tracker: sliding one-minute buckets, compliance + burn rate.
//! let slo = SloTracker::new(SloConfig { latency_p99_ms: 250.0, availability: 0.999 });
//! for _ in 0..100 {
//!     slo.record(3.0, true);
//! }
//! let snapshot = slo.snapshot();
//! assert_eq!(snapshot.requests, 100);
//! assert!(snapshot.latency_compliant && snapshot.availability_compliant);
//! assert_eq!(snapshot.availability_burn_rate, 0.0);
//! arena.set(0); // release the doc's charge
//! ```
//!
//! See `examples/status_dashboard.rs` for the full loop over HTTP: the
//! per-model status table, a deliberately induced stall, and `/readyz`
//! flipping `200 → 503 → 200` as the watchdog flags and clears it.

#![deny(missing_docs)]

/// Tensors, shapes, data types and layouts (re-export of `mnn-tensor`).
pub use mnn_tensor as tensor;

/// CPU compute kernels (re-export of `mnn-kernels`).
pub use mnn_kernels as kernels;

/// Computational-graph IR (re-export of `mnn-graph`).
pub use mnn_graph as graph;

/// Offline conversion, optimization and quantization (re-export of `mnn-converter`).
pub use mnn_converter as converter;

/// Backend abstraction and implementations (re-export of `mnn-backend`).
pub use mnn_backend as backend;

/// Engine core: pre-inference and sessions (re-export of `mnn-core`).
pub use mnn_core as core;

/// Model zoo (re-export of `mnn-models`).
pub use mnn_models as models;

/// Device profiles and engine cost models (re-export of `mnn-device-sim`).
pub use mnn_device_sim as device_sim;

/// Concurrent serving runtime (re-export of `mnn-serve`).
pub use mnn_serve as serve;

/// HTTP serving frontend: registry, admission control, drain (re-export of `mnn-http`).
pub use mnn_http as http;

/// Kernel auto-tuning: device-keyed measurement cache (re-export of `mnn-tune`).
pub use mnn_tune as tune;

/// Observability: profiler, metrics registry, log facade (re-export of `mnn-obs`).
pub use mnn_obs as obs;

pub use mnn_backend::{ConvScheme, ForwardType, GpuProfile};
pub use mnn_core::{
    CostModel, Interpreter, PooledSession, PreInferenceReport, RunStats, Session, SessionConfig,
    SessionConfigBuilder, SessionPool, TuningMode, TuningStats,
};
pub use mnn_graph::{Graph, GraphBuilder};
pub use mnn_serve::{
    ActiveTrace, FlightRecorder, RequestTrace, ServeError, Server, ServerBuilder, ServerStats,
    TraceContext,
};
pub use mnn_tensor::{Shape, Tensor};
