//! Kernel auto-tuning: measure every viable convolution scheme on this
//! machine, pick the fastest per layer, and warm-start the next session (or
//! process) from the persistent, device-keyed tuning cache.
//!
//! ```sh
//! cargo run --release --example tuned_inference
//! ```
//!
//! Prints the measured-vs-estimated placement table (the `meas ms` column is
//! filled for every tuned layer), compares cost-model and tuned execution
//! latency, then demonstrates the two warm-start guarantees:
//!
//! * a second session in the *same process* shares the in-memory cache —
//!   zero further measurements;
//! * a session in a *fresh process* (simulated here by dropping the in-process
//!   registry) loads the persisted file — zero measurements again.

use mnn::models::{build, ModelKind};
use mnn::tensor::{Shape, Tensor};
use mnn::{tune, Interpreter, SessionConfig, TuningMode};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = ModelKind::SqueezeNetV1_1;
    let size = 64;
    let threads = 2;
    let cache_path = std::env::temp_dir().join(format!(
        "mnn-tuned-inference-example-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cache_path);

    println!("model: {kind} at {size}x{size}, {threads} threads");
    println!("tuning cache: {}\n", cache_path.display());

    let interpreter = Interpreter::from_graph(build(kind, 1, size))?;
    let input = Tensor::full(Shape::nchw(1, 3, size, size), 0.1);

    // --- Baseline: pure cost-model selection (TuningMode::Off) -------------
    let start = Instant::now();
    let mut cost_session =
        interpreter.create_session(SessionConfig::builder().threads(threads).build())?;
    let cost_prepare_ms = start.elapsed().as_secs_f64() * 1000.0;
    let cost_run = cost_session.benchmark(std::slice::from_ref(&input), 1, 5)?;

    // --- Cold tuned session: measure every candidate ------------------------
    let tuned_config = SessionConfig::builder()
        .threads(threads)
        .tuning(TuningMode::Full)
        .tune_cache_path(&cache_path)
        .build();
    let start = Instant::now();
    let mut tuned_session = interpreter.create_session(tuned_config.clone())?;
    let cold_prepare_ms = start.elapsed().as_secs_f64() * 1000.0;
    let tuned_run = tuned_session.benchmark(std::slice::from_ref(&input), 1, 5)?;

    println!("== measured-vs-estimated placement table (tuned session) ==");
    println!("{}", tuned_session.report());
    println!("tuning stats: {}\n", tuned_session.tuning_stats().unwrap());

    // --- Warm starts --------------------------------------------------------
    // Same process: the registry hands the second session the same cache.
    let start = Instant::now();
    let warm_session = interpreter.create_session(tuned_config.clone())?;
    let warm_prepare_ms = start.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(
        warm_session.report().tuning_measured_candidates,
        0,
        "in-process warm start must not measure"
    );

    // Fresh process (simulated): only the persisted file survives.
    tune::clear_process_caches();
    let start = Instant::now();
    let fresh_session = interpreter.create_session(tuned_config)?;
    let fresh_prepare_ms = start.elapsed().as_secs_f64() * 1000.0;
    let fresh_stats = fresh_session.tuning_stats().unwrap();
    assert!(fresh_stats.loaded_from_disk);
    assert_eq!(
        fresh_stats.measured_candidates, 0,
        "persistent warm start must not measure"
    );

    println!("== prepare / execute summary ==");
    println!(
        "cost-model session : prepare {cost_prepare_ms:8.2} ms, run {:7.3} ms",
        cost_run.wall_ms
    );
    println!(
        "tuned (cold)       : prepare {cold_prepare_ms:8.2} ms, run {:7.3} ms",
        tuned_run.wall_ms
    );
    println!("tuned (warm, proc) : prepare {warm_prepare_ms:8.2} ms, 0 measurements");
    println!("tuned (warm, file) : prepare {fresh_prepare_ms:8.2} ms, 0 measurements");
    println!(
        "\ntuned vs cost-model run latency: {:.2}x",
        cost_run.wall_ms / tuned_run.wall_ms.max(1e-9)
    );

    let _ = std::fs::remove_file(&cache_path);
    Ok(())
}
