//! Cross-device, cross-engine what-if analysis with the analytic simulator.
//!
//! Uses the calibrated device profiles and engine cost models (the substrate behind
//! the paper's Figs. 7–9) to answer: "how would this model behave across the phone
//! fleet, per engine and backend?" — the question the paper's production case study
//! (Table 6) cares about.
//!
//! ```text
//! cargo run --release --example device_comparison [-- <model>]
//! ```

use mnn::device_sim::{
    estimate_cpu_latency_ms, estimate_gpu_latency_ms, DeviceProfile, Engine, GpuStandard,
};
use mnn::models::{build, ModelKind};

fn parse_model(name: &str) -> ModelKind {
    match name.to_ascii_lowercase().as_str() {
        "mobilenet-v2" | "mobilenetv2" => ModelKind::MobileNetV2,
        "squeezenet" | "squeezenet-v1.1" => ModelKind::SqueezeNetV1_1,
        "resnet-18" | "resnet18" => ModelKind::ResNet18,
        "resnet-50" | "resnet50" => ModelKind::ResNet50,
        "inception-v3" | "inceptionv3" => ModelKind::InceptionV3,
        _ => ModelKind::MobileNetV1,
    }
}

fn main() {
    let model = std::env::args()
        .nth(1)
        .map(|name| parse_model(&name))
        .unwrap_or(ModelKind::MobileNetV1);
    let mut graph = build(model, 1, model.default_input_size());
    graph.infer_shapes().expect("shape inference");
    println!(
        "{model}: {:.1} M parameters, {:.0} M multiply-accumulates",
        graph.parameter_count() as f64 / 1e6,
        graph.total_mul_count() as f64 / 1e6
    );

    println!("\nestimated latency (ms) per device — CPU 4 threads:");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "device", "MNN", "NCNN", "MACE", "TF-Lite", "TVM"
    );
    for device_name in ["iPhoneX", "Mate20", "MI6", "P20", "Pixel3"] {
        let device = DeviceProfile::by_name(device_name).unwrap();
        let lat = |engine| estimate_cpu_latency_ms(&graph, &device, engine, 4);
        println!(
            "{:<12} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            device_name,
            lat(Engine::Mnn),
            lat(Engine::Ncnn),
            lat(Engine::Mace),
            lat(Engine::TfLite),
            lat(Engine::Tvm)
        );
    }

    println!("\nMNN GPU latency (ms) per standard:");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "device", "Metal", "OpenCL", "OpenGL", "Vulkan"
    );
    for device_name in ["iPhoneX", "Mate20", "MI6", "P20", "Pixel3"] {
        let device = DeviceProfile::by_name(device_name).unwrap();
        let cell = |standard| {
            estimate_gpu_latency_ms(&graph, &device, Engine::Mnn, standard)
                .map(|v| format!("{v:>8.1}"))
                .unwrap_or_else(|| format!("{:>8}", "-"))
        };
        println!(
            "{:<12} {} {} {} {}",
            device_name,
            cell(GpuStandard::Metal),
            cell(GpuStandard::OpenCl),
            cell(GpuStandard::OpenGl),
            cell(GpuStandard::Vulkan)
        );
    }
}
