//! Image classification with the full offline-conversion pipeline.
//!
//! Mirrors the paper's Fig. 2 workflow end to end: build (→ "import") MobileNet-v1,
//! run the offline graph optimizer (Conv+BN folding, Conv+ReLU fusion), quantize the
//! weights, save/load the `.mnnr` model file, and finally run on-device inference
//! through the pre-inference pipeline.
//!
//! ```text
//! cargo run --release --example image_classification
//! ```

use mnn::converter::{optimize, quantize_weights, ModelFile, OptimizerOptions};
use mnn::models::{build, ModelKind};
use mnn::tensor::{Shape, Tensor};
use mnn::{Interpreter, SessionConfig};

/// Reduced input resolution so the example finishes quickly with the pure-Rust
/// kernels; use 224 to match the paper's setting exactly.
const INPUT_SIZE: usize = 96;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Offline conversion (would normally run on a workstation) -------------
    let mut graph = build(ModelKind::MobileNetV1, 1, INPUT_SIZE);
    let before = graph.nodes().len();
    let report = optimize(&mut graph, OptimizerOptions::default());
    println!(
        "optimizer: {} -> {} nodes ({} BN folded, {} activations fused)",
        before, report.nodes_after, report.fused_batch_norms, report.fused_activations
    );
    let quant = quantize_weights(&mut graph);
    println!(
        "quantizer: {} tensors, {:.1}x weight compression, max abs error {:.5}",
        quant.quantized_tensors,
        quant.compression_ratio(),
        quant.max_abs_error
    );

    let model_path = std::env::temp_dir().join("mobilenet_v1.mnnr");
    ModelFile::new(graph).save(&model_path)?;
    println!("saved optimized model to {}", model_path.display());

    // ---- On-device inference ---------------------------------------------------
    let model = ModelFile::load(&model_path)?;
    let interpreter = Interpreter::from_graph(model.graph)?;
    let mut session = interpreter.create_session(SessionConfig::builder().threads(4).build())?;
    println!(
        "pre-inference took {:.1} ms; memory plan saves {:.0}% of intermediate memory",
        session.report().pre_inference_ms,
        session.report().memory_savings_ratio() * 100.0
    );

    // A synthetic "image": a smooth gradient, the classifier weights are synthetic
    // anyway. Latency, not accuracy, is what the engine reproduces.
    let pixels: Vec<f32> = (0..3 * INPUT_SIZE * INPUT_SIZE)
        .map(|i| (i % 255) as f32 / 255.0 - 0.5)
        .collect();
    let input = Tensor::from_vec(Shape::nchw(1, 3, INPUT_SIZE, INPUT_SIZE), pixels);

    let outputs = session.run_with(&[("data", &input)])?;
    let stats = session.last_stats();
    let probabilities = outputs[0].data_f32();
    let mut top: Vec<(usize, f32)> = probabilities.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "inference: {:.1} ms wall ({} threads)",
        stats.wall_ms,
        session.config().threads
    );
    println!("top-5 classes:");
    for (class, p) in top.iter().take(5) {
        println!("  class {class:>4}  p = {p:.5}");
    }
    Ok(())
}
