//! The operator's view: `/readyz` and `/v1/status` under a worker stall.
//!
//! ```text
//! cargo run --release --example status_dashboard
//! ```
//!
//! Starts an HTTP frontend with two zoo models — one healthy, one built with
//! a deliberately impossible watchdog deadline — renders `/v1/status` as the
//! kind of table a dashboard would show (per-model memory attribution, worker
//! states, SLO compliance), then fires a slow inference and watches `/readyz`
//! flip `200 → 503 → 200` as the watchdog flags and clears the stall.

use mnn::http::{
    HttpConfig, HttpServer, InferRequest, ModelRegistry, ReadyResponse, ServeOptions,
    StatusResponse, TensorJson,
};
use mnn::models::ModelKind;
use mnn::obs::SloConfig;
use mnn::SessionConfig;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Input edge for the model whose inference should outlast the watchdog
/// deadline below. At 1 ms even a release build cannot finish in time.
const SLOW_PIXELS: usize = 256;

/// Send one request on a fresh connection; return (status code, body).
fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<(u16, String)> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    writer.write_all(body)?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut line = String::new();
    while reader.read_line(&mut line)? > 0 && line != "\r\n" {
        line.clear();
    }
    let mut body = String::new();
    reader.read_to_string(&mut body)?;
    Ok((status, body))
}

fn print_status(status: &StatusResponse) {
    println!(
        "  build {} ({}, kernels: {}), up {:.1}s, rss {:.1} MiB, accounted {:.1} MiB",
        status.build.version,
        status.build.build_id,
        status.build.kernel_backend,
        status.uptime_seconds,
        status.os.rss_bytes as f64 / (1024.0 * 1024.0),
        status.accounted_bytes as f64 / (1024.0 * 1024.0),
    );
    println!(
        "  {:<16} {:>7} {:>8} {:>7} {:>10} {:>9} {:>12}",
        "model", "workers", "stalled", "queue", "mem KiB", "p99 ms", "slo"
    );
    for model in &status.models {
        let slo = match &model.slo {
            Some(slo) if slo.latency_compliant && slo.availability_compliant => "ok".to_string(),
            Some(slo) => format!("burn {:.1}x", slo.availability_burn_rate),
            None => "-".to_string(),
        };
        println!(
            "  {:<16} {:>7} {:>8} {:>7} {:>10.1} {:>9.2} {:>12}",
            model.name,
            model.workers,
            model.stalled_workers,
            format!("{}/{}", model.queue_depth, model.queue_capacity),
            model.memory.resident_bytes as f64 / 1024.0,
            model.p99_latency_ms,
            slo,
        );
        for component in &model.memory.components {
            println!(
                "      {:<24} {:>10.1} KiB",
                component.component,
                component.bytes as f64 / 1024.0
            );
        }
    }
}

/// Poll `/readyz` until it reports `code`, returning the last body.
fn await_readyz(
    addr: std::net::SocketAddr,
    code: u16,
    within: Duration,
) -> Result<String, Box<dyn std::error::Error>> {
    let deadline = Instant::now() + within;
    loop {
        let (status, body) = request(addr, "GET", "/readyz", b"")?;
        if status == code {
            return Ok(body);
        }
        if Instant::now() > deadline {
            return Err(format!("readyz never reached {code}; last: {status} {body}").into());
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== starting a two-model frontend ==");
    let mut registry = ModelRegistry::new();
    registry.register_zoo(
        ModelKind::TinyCnn,
        16,
        &ServeOptions {
            workers: 2,
            session: SessionConfig::cpu(1),
            slo: Some(SloConfig {
                latency_p99_ms: 250.0,
                availability: 0.999,
            }),
            ..ServeOptions::default()
        },
    )?;
    // The stall victim: one worker and a watchdog deadline no inference at
    // this resolution can meet, so the first request reads as a stall.
    registry.register_model(
        "slow-cnn",
        mnn::converter::ModelFile::new(mnn::models::build(ModelKind::TinyCnn, 1, SLOW_PIXELS)),
        &ServeOptions {
            workers: 1,
            max_batch: 1,
            session: SessionConfig::cpu(1),
            watchdog_deadline: Some(Duration::from_millis(1)),
            ..ServeOptions::default()
        },
    )?;
    let server = HttpServer::bind("127.0.0.1:0", registry, HttpConfig::default())?;
    let addr = server.local_addr();
    println!("listening on http://{addr}\n");

    let (code, _) = request(addr, "GET", "/readyz", b"")?;
    println!("GET /readyz -> {code} (healthy at rest)\n");

    println!("GET /v1/status");
    let (_, body) = request(addr, "GET", "/v1/status", b"")?;
    print_status(&serde_json::from_str(&body)?);

    println!("\n== inducing a stall on slow-cnn ==");
    let infer = InferRequest {
        inputs: BTreeMap::from([(
            "data".to_string(),
            TensorJson {
                shape: vec![1, 3, SLOW_PIXELS, SLOW_PIXELS],
                data: vec![0.5; 3 * SLOW_PIXELS * SLOW_PIXELS],
            },
        )]),
    };
    let infer_body = serde_json::to_vec(&infer)?;
    let slow =
        std::thread::spawn(move || request(addr, "POST", "/v1/models/slow-cnn/infer", &infer_body));

    let body = await_readyz(addr, 503, Duration::from_secs(60))?;
    let ready: ReadyResponse = serde_json::from_str(&body)?;
    println!(
        "GET /readyz -> 503 while the batch is stuck: {:?}",
        ready.reasons
    );

    let (_, body) = request(addr, "GET", "/v1/status", b"")?;
    print_status(&serde_json::from_str(&body)?);

    let (code, _) = slow.join().expect("infer thread")?;
    println!("\nslow inference finally answered -> {code}");

    await_readyz(addr, 200, Duration::from_secs(30))?;
    println!("GET /readyz -> 200 (stall cleared at the next heartbeat)");

    let summary = server.shutdown();
    println!("\n== drained: {} ==", summary.drained);
    Ok(())
}
