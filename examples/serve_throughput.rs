//! Serving quickstart: session pooling, backpressure and dynamic micro-batching.
//!
//! ```text
//! cargo run --release --example serve_throughput
//! ```
//!
//! Builds a [`mnn::serve::Server`] over MobileNet-v1, drives a concurrent
//! closed-loop load through it twice — once with micro-batching disabled
//! (`max_batch = 1`) and once with it enabled — and prints the
//! [`mnn::serve::ServerStats`] snapshot for each: throughput, p50/p99 latency
//! and the batch-size histogram.

use mnn::models::{build, ModelKind};
use mnn::serve::{ServeError, Server};
use mnn::tensor::{Shape, Tensor};
use mnn::SessionConfig;
use std::time::Duration;

const INPUT_SIZE: usize = 64;
const REQUESTS: usize = 48;
const PRODUCERS: usize = 4;

/// Submit `REQUESTS` single-image requests from `PRODUCERS` threads and wait
/// for every response, backing off whenever the bounded queue pushes back.
fn drive(server: &Server, input: &Tensor) -> Result<(), ServeError> {
    std::thread::scope(|scope| {
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|_| {
                scope.spawn(|| {
                    let mut handles = Vec::new();
                    for _ in 0..REQUESTS / PRODUCERS {
                        // `submit` never blocks: a full queue is a backpressure
                        // signal, so back off and retry.
                        let handle = loop {
                            match server.submit(&[("data", input)]) {
                                Ok(handle) => break handle,
                                Err(ServeError::QueueFull { .. }) => {
                                    std::thread::sleep(Duration::from_micros(100));
                                }
                                Err(other) => return Err(other),
                            }
                        };
                        handles.push(handle);
                    }
                    for handle in handles {
                        handle.wait()?;
                    }
                    Ok(())
                })
            })
            .collect();
        for producer in producers {
            producer.join().expect("producer panicked")?;
        }
        Ok(())
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = Tensor::full(Shape::nchw(1, 3, INPUT_SIZE, INPUT_SIZE), 0.5);

    for max_batch in [1usize, 8] {
        // Two workers, each owning a pre-warmed session (pre-inference runs
        // here, once per worker — never per request).
        let server = Server::builder()
            .workers(2)
            .max_batch(max_batch)
            .batch_window(Duration::from_millis(2))
            .queue_capacity(REQUESTS)
            .session_config(SessionConfig::cpu(2))
            .build(build(ModelKind::MobileNetV1, 1, INPUT_SIZE))?;

        // A single blocking call first — the simplest API.
        let outputs = server.infer(&[("data", &input)])?;
        assert_eq!(outputs[0].shape().dims(), &[1, 1000]);

        drive(&server, &input)?;

        println!(
            "\n--- MobileNet-v1 {INPUT_SIZE}px, {REQUESTS} requests, {PRODUCERS} producers, max_batch = {max_batch} ---"
        );
        println!("{}", server.stats());
    }
    Ok(())
}
