//! Serving over HTTP: an in-process server exercised by a raw-socket client.
//!
//! ```text
//! cargo run --release --example http_client
//! ```
//!
//! Starts an [`mnn::http::HttpServer`] on an ephemeral port with a zoo model
//! registered, then acts as its own HTTP client over a plain `TcpStream`:
//! lists the models, checks health, runs an inference with a JSON tensor
//! body, reads the serving stats, and finally triggers graceful shutdown over
//! the wire — the exact session the `mnn_http` binary serves to `curl`.

use mnn::http::{HttpConfig, HttpServer, InferRequest, ModelRegistry, ServeOptions, TensorJson};
use mnn::models::ModelKind;
use mnn::SessionConfig;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

const INPUT_SIZE: usize = 32;

/// Send one request on a fresh connection; return (status line, body).
fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<(String, String)> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    writer.write_all(body)?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    // Skip headers, then read the Content-Length-framed body to EOF
    // (Connection: close makes EOF the frame boundary).
    let mut line = String::new();
    while reader.read_line(&mut line)? > 0 && line != "\r\n" {
        line.clear();
    }
    let mut body = String::new();
    reader.read_to_string(&mut body)?;
    Ok((status_line.trim_end().to_string(), body))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== starting the HTTP serving frontend ==");
    let mut registry = ModelRegistry::new();
    registry.register_zoo(
        ModelKind::TinyCnn,
        INPUT_SIZE,
        &ServeOptions {
            workers: 2,
            session: SessionConfig::cpu(1),
            ..ServeOptions::default()
        },
    )?;
    let server = HttpServer::bind("127.0.0.1:0", registry, HttpConfig::default())?;
    let addr = server.local_addr();
    println!("listening on http://{addr}\n");

    let (status, body) = request(addr, "GET", "/healthz", b"")?;
    println!("GET /healthz\n  {status}\n  {body}\n");

    let (status, body) = request(addr, "GET", "/v1/models", b"")?;
    println!("GET /v1/models\n  {status}\n  {body}\n");

    let infer = InferRequest {
        inputs: BTreeMap::from([(
            "data".to_string(),
            TensorJson {
                shape: vec![1, 3, INPUT_SIZE, INPUT_SIZE],
                data: (0..3 * INPUT_SIZE * INPUT_SIZE)
                    .map(|i| (i % 255) as f32 / 255.0)
                    .collect(),
            },
        )]),
    };
    let (status, body) = request(
        addr,
        "POST",
        "/v1/models/tiny-cnn/infer",
        &serde_json::to_vec(&infer)?,
    )?;
    let preview: String = body.chars().take(120).collect();
    println!("POST /v1/models/tiny-cnn/infer\n  {status}\n  {preview}...\n");

    let (status, body) = request(addr, "GET", "/v1/models/tiny-cnn/stats", b"")?;
    println!("GET /v1/models/tiny-cnn/stats\n  {status}\n  {body}\n");

    let (status, body) = request(addr, "POST", "/admin/shutdown", b"")?;
    println!("POST /admin/shutdown\n  {status}\n  {body}\n");

    server.wait_shutdown_requested();
    let summary = server.shutdown();
    println!(
        "== drained: {} (aborted {} request(s)) ==",
        summary.drained, summary.aborted_requests
    );
    Ok(())
}
