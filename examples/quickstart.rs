//! Quickstart: build a model, run pre-inference, execute it, resize it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the session flow end to end:
//!
//! 1. build a model (real applications load one through `mnn::converter::ModelFile`),
//! 2. create an interpreter and an **owned** session via the config **builder**
//!    (creating the session runs *pre-inference*: scheme selection, backend cost
//!    evaluation and memory planning — paper Section 3.2),
//! 3. run inference through the **named I/O** API,
//! 4. change the input geometry with `resize_input` + `resize_session` and run
//!    again — alternating between known geometries is served from the
//!    pre-inference cache.
//!
//! The old positional `session.run(&[tensor])` still works as a deprecated
//! compatibility wrapper, but new code should address tensors by name as below.

use mnn::models::{build, ModelKind};
use mnn::tensor::{Shape, Tensor};
use mnn::{ForwardType, Interpreter, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A model. The zoo builds a small CNN with synthetic weights; its input is
    //    named "data" and its softmax output "prob".
    let graph = build(ModelKind::TinyCnn, 1, 32);
    println!(
        "model: {} ({} parameters), inputs {:?}",
        graph.name(),
        graph.parameter_count(),
        graph.input_names()
    );

    // 2. Interpreter + owned session, configured through the builder.
    let interpreter = Interpreter::from_graph(graph)?;
    let config = SessionConfig::builder()
        .threads(4)
        .forward(ForwardType::Cpu)
        .build();
    let mut session = interpreter.create_session(config)?;

    // The pre-inference report renders as a per-node placement table.
    println!("{}", session.report());

    // 3. Inference through named I/O: fill the staged input, run, read by name.
    *session.input_mut("data")? = Tensor::full(Shape::nchw(1, 3, 32, 32), 0.5);
    session.run_session()?;
    let probabilities = session.output("prob")?.data_f32();
    let best = probabilities
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "inference: {:.2} ms wall, top class = {} (p = {:.3})",
        session.last_stats().wall_ms,
        best.0,
        best.1
    );

    // 4. Dynamic input resizing: pre-inference re-runs for the new geometry...
    session.resize_input("data", Shape::nchw(1, 3, 64, 64))?;
    session.resize_session()?;
    let outputs = session.run_with(&[("data", &Tensor::full(Shape::nchw(1, 3, 64, 64), 0.5))])?;
    println!(
        "after resize to 64x64: output {}, re-plan took {:.2} ms (reused {} executions)",
        outputs[0].shape(),
        session.report().pre_inference_ms,
        session.report().reused_executions
    );

    // ...and resizing back to a previously-seen shape hits the plan cache.
    session.resize_input("data", Shape::nchw(1, 3, 32, 32))?;
    session.resize_session()?;
    println!(
        "back to 32x32: served from cache = {}, cache hits = {}",
        session.report().from_cache,
        session.plan_cache_hits()
    );
    Ok(())
}
