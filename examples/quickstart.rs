//! Quickstart: build a model, run pre-inference, execute it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mnn::models::{build, ModelKind};
use mnn::tensor::{Shape, Tensor};
use mnn::{Interpreter, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A model. Real applications load one through `mnn::converter::ModelFile`;
    //    here the zoo builds a small CNN with synthetic weights.
    let graph = build(ModelKind::TinyCnn, 1, 32);
    println!("model: {} ({} parameters)", graph.name(), graph.parameter_count());

    // 2. Interpreter + session. Creating the session runs *pre-inference*: scheme
    //    selection, backend cost evaluation and memory planning (paper Section 3.2).
    let interpreter = Interpreter::from_graph(graph)?;
    let mut session = interpreter.create_session(SessionConfig::cpu(4))?;

    let report = session.report();
    println!(
        "pre-inference: {:.2} ms, estimated run cost {:.3} ms, memory {} -> {} elements ({:.0}% saved)",
        report.pre_inference_ms,
        report.estimated_total_ms,
        report.unplanned_memory_elements,
        report.planned_memory_elements,
        report.memory_savings_ratio() * 100.0
    );
    for placement in &report.placements {
        if let Some(scheme) = placement.scheme {
            println!("  {:<16} -> {} via {}", placement.name, placement.forward_type, scheme);
        }
    }

    // 3. Inference. The input shape must match the graph's declared input.
    let input = Tensor::full(Shape::nchw(1, 3, 32, 32), 0.5);
    let outputs = session.run(&[input])?;
    let probabilities = outputs[0].data_f32();
    let best = probabilities
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "inference: {:.2} ms wall, top class = {} (p = {:.3})",
        session.last_stats().wall_ms,
        best.0,
        best.1
    );
    Ok(())
}
