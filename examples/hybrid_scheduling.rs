//! Hybrid scheduling across heterogeneous backends.
//!
//! Demonstrates the paper's Section 3.4: a single session places compute-heavy
//! operators on a (simulated) Vulkan GPU backend while operators that backend does
//! not implement fall back to the CPU — transparently, with identical results.
//!
//! ```text
//! cargo run --release --example hybrid_scheduling
//! ```

use mnn::models::{build, ModelKind};
use mnn::tensor::{Shape, Tensor};
use mnn::{ForwardType, GpuProfile, Interpreter, SessionConfig};
use std::collections::BTreeMap;

const INPUT_SIZE: usize = 64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = build(ModelKind::SqueezeNetV1_1, 1, INPUT_SIZE);
    let interpreter = Interpreter::from_graph(graph)?;
    let input = Tensor::full(Shape::nchw(1, 3, INPUT_SIZE, INPUT_SIZE), 0.25);

    // CPU-only session.
    let mut cpu_session = interpreter.create_session(SessionConfig::cpu(4))?;
    let cpu_out = cpu_session.run(std::slice::from_ref(&input))?;

    // Hybrid session: prefer a simulated Mali-G72 through Vulkan, CPU as fallback.
    let mut gpu_session = interpreter.create_session(SessionConfig::gpu(
        ForwardType::Vulkan,
        GpuProfile::by_name("Mali-G72"),
    ))?;
    let gpu_out = gpu_session.run(std::slice::from_ref(&input))?;

    // Identical numerics regardless of placement.
    let diff = cpu_out[0].max_abs_diff(&gpu_out[0]);
    println!("max |cpu - hybrid| over outputs: {diff:.2e}");

    // Where did each operator land? The report's Display impl prints the full
    // per-node placement table; summarize per backend first.
    let mut per_backend: BTreeMap<String, usize> = BTreeMap::new();
    for placement in &gpu_session.report().placements {
        *per_backend
            .entry(placement.forward_type.to_string())
            .or_insert(0) += 1;
    }
    println!("operator placement in the hybrid session:");
    for (backend, count) in &per_backend {
        println!("  {backend:<8} {count} operators");
    }
    println!("\nfull placement table:\n{}", gpu_session.report());
    println!(
        "estimated cost: cpu-only {:.2} ms vs hybrid {:.2} ms; simulated GPU time last run: {:.2} ms",
        cpu_session.report().estimated_total_ms,
        gpu_session.report().estimated_total_ms,
        gpu_session.last_stats().gpu_virtual_ms,
    );
    println!(
        "wall time (this machine, kernels run on CPU either way): cpu {:.1} ms, hybrid {:.1} ms",
        cpu_session.last_stats().wall_ms,
        gpu_session.last_stats().wall_ms
    );
    Ok(())
}
