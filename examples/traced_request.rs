//! End-to-end request tracing: a client `traceparent` followed through the
//! whole serving stack and read back as a waterfall.
//!
//! ```text
//! cargo run --release --example traced_request
//! ```
//!
//! Starts an [`mnn::http::HttpServer`] with tracing on, sends one inference
//! carrying a W3C `traceparent` header, and shows what the tracing surface
//! gives back: the byte-exact `traceparent` echo and `X-Request-Id` on the
//! response, the per-stage waterfall (parse → decode → queue wait → batch
//! assembly → inference → scatter → encode → write, with per-op kernel spans
//! nested under inference) from `GET /v1/traces?id=...`, the latency-histogram
//! exemplar in `/metrics` that points back at the trace, and the
//! chrome://tracing export.

use mnn::http::{HttpConfig, HttpServer, InferRequest, ModelRegistry, ServeOptions, TensorJson};
use mnn::models::ModelKind;
use mnn::SessionConfig;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const INPUT_SIZE: usize = 32;
const TRACEPARENT: &str = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
const TRACE_ID: &str = "0af7651916cd43dd8448eb211c80319c";

type Response = (String, Vec<(String, String)>, String);

/// Send one request on a fresh connection; return (status line, headers, body).
fn request(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    let mut lines = head.lines();
    let status = lines.next().unwrap_or_default().to_string();
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok((status, headers, body.to_string()))
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> &'a str {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
        .unwrap_or("<missing>")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== starting the HTTP frontend with tracing on ==");
    let mut registry = ModelRegistry::new();
    registry.register_zoo(
        ModelKind::TinyCnn,
        INPUT_SIZE,
        &ServeOptions {
            workers: 2,
            session: SessionConfig::cpu(1),
            ..ServeOptions::default()
        },
    )?;
    let config = HttpConfig {
        tracing: Some(true), // the default follows MNN_TRACE; pin it on here
        ..HttpConfig::default()
    };
    let server = HttpServer::bind("127.0.0.1:0", registry, config)?;
    let addr = server.local_addr();
    println!("listening on http://{addr}\n");

    // One inference carrying a W3C trace context, as an upstream service
    // participating in a distributed trace would send it.
    let infer = InferRequest {
        inputs: BTreeMap::from([(
            "data".to_string(),
            TensorJson {
                shape: vec![1, 3, INPUT_SIZE, INPUT_SIZE],
                data: (0..3 * INPUT_SIZE * INPUT_SIZE)
                    .map(|i| (i % 255) as f32 / 255.0)
                    .collect(),
            },
        )]),
    };
    let (status, headers, _) = request(
        addr,
        "POST",
        "/v1/models/tiny-cnn/infer",
        &[("traceparent", TRACEPARENT)],
        &serde_json::to_vec(&infer)?,
    )?;
    println!("POST /v1/models/tiny-cnn/infer  (traceparent: {TRACEPARENT})");
    println!("  {status}");
    println!("  x-request-id: {}", header(&headers, "x-request-id"));
    println!("  traceparent:  {}\n", header(&headers, "traceparent"));

    // The trace is sealed just after the response bytes leave; poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    let trace = loop {
        let (status, _, body) =
            request(addr, "GET", &format!("/v1/traces?id={TRACE_ID}"), &[], b"")?;
        if status.contains("200") {
            let parsed: mnn::http::TracesResponse = serde_json::from_str(&body)?;
            break parsed.traces.into_iter().next().expect("one trace");
        }
        assert!(Instant::now() < deadline, "trace never appeared");
        std::thread::sleep(Duration::from_millis(5));
    };

    println!("GET /v1/traces?id={TRACE_ID}");
    println!(
        "  model={} status={} adopted={} total={:.1}ms coverage={:.1}%",
        trace.model,
        trace.status,
        trace.adopted,
        trace.total_us / 1e3,
        trace.coverage * 100.0
    );
    println!("  waterfall:");
    for stage in &trace.stages {
        println!(
            "    {:indent$}{:<16} {:>9.1}us  +{:.1}us",
            "",
            stage.name,
            stage.dur_us,
            stage.start_us,
            indent = stage.depth as usize * 2
        );
    }
    println!(
        "  {} kernel span(s) nested under inference, e.g. {}",
        trace.ops.len(),
        trace.ops.first().map(|op| op.name.as_str()).unwrap_or("-")
    );
    if let Some(batch) = &trace.batch {
        println!(
            "  batch span {} coalesced {} request(s)\n",
            batch.span_id, batch.size
        );
    }

    // The latency histogram's exemplar points back at this trace.
    let (_, _, metrics) = request(addr, "GET", "/metrics", &[], b"")?;
    if let Some(line) = metrics.lines().find(|l| l.contains("# {trace_id=")) {
        println!("/metrics exemplar:\n  {line}\n");
    }

    // And the same waterfall renders in chrome://tracing / ui.perfetto.dev.
    let (status, _, chrome) = request(addr, "GET", "/v1/traces?format=trace", &[], b"")?;
    let preview: String = chrome.chars().take(120).collect();
    println!("GET /v1/traces?format=trace\n  {status}\n  {preview}...\n");

    server.request_shutdown();
    server.wait_shutdown_requested();
    let summary = server.shutdown();
    println!(
        "== drained: {} (aborted {} request(s)) ==",
        summary.drained, summary.aborted_requests
    );
    Ok(())
}
