//! Per-op runtime profiling: attach a profiler to a session, run a zoo model
//! a few times, and print where the milliseconds went.
//!
//! ```sh
//! cargo run --release --example profiled_inference
//! ```
//!
//! Prints the aggregated profile table (per-op-type totals and the hottest
//! nodes, with how much of the wall time the spans account for), writes the
//! raw spans as a chrome://tracing JSON file, and finishes with the
//! process-wide Prometheus metrics the same run populated.

use mnn::models::{build, ModelKind};
use mnn::obs::Profiler;
use mnn::tensor::{Shape, Tensor};
use mnn::{Interpreter, SessionConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = ModelKind::SqueezeNetV1_1;
    let size = 64;
    let runs = 10;

    let profiler = Arc::new(Profiler::new());
    profiler.set_enabled(true);

    let interpreter = Interpreter::from_graph(build(kind, 1, size))?;
    let mut session = interpreter.create_session(
        SessionConfig::builder()
            .threads(2)
            .profiling(Arc::clone(&profiler))
            .build(),
    )?;

    let input = Tensor::full(Shape::nchw(1, 3, size, size), 0.1);
    println!("model: {kind} at {size}x{size}, {runs} profiled runs\n");
    for _ in 0..runs {
        session.run_with(&[("data", &input)])?;
    }

    // The aggregated table: per-op-type totals, hottest nodes, coverage.
    let report = profiler.report();
    println!("{}", report.top(12));

    // The raw spans, one chrome://tracing 'X' event per executed node.
    let trace_path = std::env::temp_dir().join(format!(
        "mnn-profiled-inference-{}.trace.json",
        std::process::id()
    ));
    std::fs::write(&trace_path, profiler.chrome_trace())?;
    println!(
        "chrome trace written to {} (open via chrome://tracing)\n",
        trace_path.display()
    );

    // The same runs also fed the process-wide metrics registry — this is
    // exactly what `GET /metrics` on mnn_http serves.
    println!("== /metrics excerpt ==");
    for line in mnn::obs::metrics::render_global().lines() {
        if line.starts_with("mnn_session_") || line.starts_with("mnn_plan_cache_") {
            println!("{line}");
        }
    }
    Ok(())
}
