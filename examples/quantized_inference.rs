//! End-to-end int8 inference: quantize a model offline, run it on the integer
//! kernels, and compare against the float model.
//!
//! ```sh
//! cargo run --release --example quantized_inference
//! ```
//!
//! Prints the `QuantizationReport` (weight-byte compression), the pre-inference
//! placement table (showing which layers picked the `quantized-gemm` scheme and
//! which fell back to f32), and the float-vs-int8 output agreement.

use mnn::backend::ConvScheme;
use mnn::converter::{optimize, quantize_weights, OptimizerOptions};
use mnn::models::{build, ModelKind};
use mnn::tensor::{Shape, Tensor};
use mnn::{Interpreter, SessionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kind = ModelKind::MobileNetV1;
    let size = 64;

    // Offline pipeline: build -> optimize (BN folding, activation fusion) ->
    // quantize (weights become i8 constants, nodes become quantized variants).
    let mut float_graph = build(kind, 1, size);
    optimize(&mut float_graph, OptimizerOptions::default());
    let float_bytes = float_graph.constant_bytes();

    let mut quant_graph = float_graph.clone();
    let report = quantize_weights(&mut quant_graph);
    println!("model: {kind} at {size}x{size}");
    println!("{report}");
    println!(
        "graph constant bytes: {} -> {} ({:.2}x smaller)\n",
        float_bytes,
        quant_graph.constant_bytes(),
        float_bytes as f64 / quant_graph.constant_bytes() as f64
    );

    // Pre-inference decides, per layer, between the integer kernel and the f32
    // fallback (depthwise layers stay f32 by design).
    let interpreter = Interpreter::from_graph(quant_graph)?;
    let mut quant_session = interpreter.create_session(SessionConfig::cpu(4))?;
    println!("{}", quant_session.report());
    let int8_layers = quant_session
        .report()
        .placements
        .iter()
        .filter(|p| p.scheme == Some(ConvScheme::QuantizedGemm))
        .count();
    println!("layers on the int8 integer kernel: {int8_layers}\n");

    // Same input through both graphs: agreement check.
    let float_interpreter = Interpreter::from_graph(float_graph)?;
    let mut float_session = float_interpreter.create_session(SessionConfig::cpu(4))?;
    let shape = Shape::nchw(1, 3, size, size);
    let input = Tensor::from_vec(
        shape.clone(),
        (0..shape.num_elements())
            .map(|i| ((i % 37) as f32 - 18.0) * 0.03)
            .collect(),
    );
    let float_out = float_session.run_with(&[("data", &input)])?;
    let quant_out = quant_session.run_with(&[("data", &input)])?;

    let top1 = |t: &Tensor| {
        t.data_f32()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    };
    println!(
        "float top-1: {}  int8 top-1: {}  max |Δprob|: {:.6}",
        top1(&float_out[0]),
        top1(&quant_out[0]),
        float_out[0].max_abs_diff(&quant_out[0]),
    );
    assert_eq!(top1(&float_out[0]), top1(&quant_out[0]), "top-1 must agree");
    println!("float and int8 inference agree on the top-1 class");
    Ok(())
}
